// Package classifiers implements the classifier zoo the paper sweeps over:
// the ten classifiers of the local scikit-learn arm (Table 1) plus the three
// Microsoft-only ones (Averaged Perceptron, Bayes Point Machine, Decision
// Jungle). Every classifier trains on a dense feature matrix with binary
// labels and exposes its tunable parameters through the registry so the
// pipeline can enumerate configurations exactly the way §3.2 does
// (categorical: all options; numeric: default/100, default, 100·default,
// clamped to the valid range).
package classifiers

import (
	"fmt"
	"math"
	"sort"

	"mlaasbench/internal/rng"
)

// Classifier is a trainable binary classifier.
type Classifier interface {
	// Name returns the canonical classifier name (e.g. "logreg").
	Name() string
	// Fit trains on the given samples. Implementations must be
	// deterministic given r. Fit reports an error for unusable input
	// (no samples, zero features).
	Fit(x [][]float64, y []int, r *rng.RNG) error
	// Predict returns a 0/1 label for each row. Predict must only be
	// called after a successful Fit.
	Predict(x [][]float64) []int
}

// Params carries classifier hyperparameters by name. Missing entries fall
// back to the classifier's documented default.
type Params map[string]any

// Float reads a numeric parameter, accepting float64 or int values.
func (p Params) Float(name string, def float64) float64 {
	v, ok := p[name]
	if !ok {
		return def
	}
	switch t := v.(type) {
	case float64:
		return t
	case int:
		return float64(t)
	default:
		return def
	}
}

// Int reads an integer parameter (rounding float values).
func (p Params) Int(name string, def int) int {
	v, ok := p[name]
	if !ok {
		return def
	}
	switch t := v.(type) {
	case int:
		return t
	case float64:
		return int(math.Round(t))
	default:
		return def
	}
}

// String reads a string parameter.
func (p Params) String(name, def string) string {
	if v, ok := p[name].(string); ok {
		return v
	}
	return def
}

// Clone returns an independent copy of p.
func (p Params) Clone() Params {
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// ParamKind distinguishes how a parameter is enumerated.
type ParamKind int

// Parameter kinds.
const (
	Categorical ParamKind = iota
	Numeric
)

// ParamSpec describes one tunable parameter for grid enumeration.
type ParamSpec struct {
	Name    string
	Kind    ParamKind
	Options []any   // Categorical: the exhaustive option list
	Default float64 // Numeric: platform default D
	Min     float64 // Numeric: smallest valid value
	Max     float64 // Numeric: largest valid value
	IsInt   bool    // Numeric: round grid values to integers
}

// GridValues returns the values the sweep explores for this parameter. For
// categorical parameters that is every option; for numeric parameters the
// paper's rule (§3.2): D/100, D and 100·D, clamped to the valid range and
// de-duplicated.
func (ps ParamSpec) GridValues() []any {
	if ps.Kind == Categorical {
		return append([]any(nil), ps.Options...)
	}
	raw := []float64{ps.Default / 100, ps.Default, ps.Default * 100}
	var vals []any
	seen := map[float64]bool{}
	for _, v := range raw {
		if ps.Max > ps.Min {
			if v < ps.Min {
				v = ps.Min
			}
			if v > ps.Max {
				v = ps.Max
			}
		}
		if ps.IsInt {
			v = math.Round(v)
			if v < 1 && ps.Min >= 1 {
				v = 1
			}
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		if ps.IsInt {
			vals = append(vals, int(v))
		} else {
			vals = append(vals, v)
		}
	}
	return vals
}

// DefaultValue returns the platform-default value for the parameter.
func (ps ParamSpec) DefaultValue() any {
	if ps.Kind == Categorical {
		if len(ps.Options) == 0 {
			return nil
		}
		return ps.Options[0]
	}
	if ps.IsInt {
		return int(math.Round(ps.Default))
	}
	return ps.Default
}

// Info describes a registered classifier: its identity, linearity family
// (Table 5) and tunable parameters (local-library surface; platforms expose
// subsets).
type Info struct {
	Name   string
	Label  string // paper abbreviation, e.g. "LR", "BST"
	Linear bool
	Params []ParamSpec
}

type entry struct {
	info Info
	make func(Params) Classifier
}

var registry = map[string]entry{}

// register installs a classifier constructor; called from each classifier
// file's init.
func register(info Info, make func(Params) Classifier) {
	if _, dup := registry[info.Name]; dup {
		panic("classifiers: duplicate registration " + info.Name)
	}
	registry[info.Name] = entry{info: info, make: make}
}

// New constructs a classifier by registry name with the given parameters.
func New(name string, params Params) (Classifier, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("classifiers: unknown classifier %q", name)
	}
	if params == nil {
		params = Params{}
	}
	return e.make(params), nil
}

// Lookup returns the registry info for a classifier name.
func Lookup(name string) (Info, error) {
	e, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("classifiers: unknown classifier %q", name)
	}
	return e.info, nil
}

// Names returns all registered classifier names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LinearFamily returns the Table-5 split: names of linear and non-linear
// classifiers among the registered set.
func LinearFamily() (linear, nonLinear []string) {
	for _, name := range Names() {
		if registry[name].info.Linear {
			linear = append(linear, name)
		} else {
			nonLinear = append(nonLinear, name)
		}
	}
	return linear, nonLinear
}

// DefaultParams returns the platform-default parameter assignment for a
// classifier (every spec at its default value).
func DefaultParams(name string) (Params, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	p := Params{}
	for _, spec := range info.Params {
		p[spec.Name] = spec.DefaultValue()
	}
	return p, nil
}

// validateFit performs the shared input checks for Fit implementations.
func validateFit(x [][]float64, y []int) (n, d int, err error) {
	if len(x) == 0 {
		return 0, 0, fmt.Errorf("classifiers: empty training set")
	}
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("classifiers: %d samples vs %d labels", len(x), len(y))
	}
	d = len(x[0])
	if d == 0 {
		return 0, 0, fmt.Errorf("classifiers: zero features")
	}
	for i, row := range x {
		if len(row) != d {
			return 0, 0, fmt.Errorf("classifiers: ragged row %d", i)
		}
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return 0, 0, fmt.Errorf("classifiers: label %d at %d not binary", v, i)
		}
	}
	return len(x), d, nil
}

// majorityLabel returns the most common label (ties → 1).
func majorityLabel(y []int) int {
	pos := 0
	for _, v := range y {
		pos += v
	}
	if 2*pos >= len(y) {
		return 1
	}
	return 0
}

// signedLabels maps {0,1} to {-1,+1} for margin-based learners.
func signedLabels(y []int) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		if v == 1 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}
