package classifiers

import (
	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "perceptron",
		Label:  "AP",
		Linear: true,
		Params: []ParamSpec{
			{Name: "learning_rate", Kind: Numeric, Default: 1.0, Min: 1e-4, Max: 100},
			{Name: "max_iter", Kind: Numeric, Default: 10, Min: 1, Max: 200, IsInt: true},
		},
	}, func(p Params) Classifier { return &AveragedPerceptron{params: p} })

	register(Info{
		Name:   "bpm",
		Label:  "BPM",
		Linear: true,
		Params: []ParamSpec{
			{Name: "n_iter", Kind: Numeric, Default: 30, Min: 1, Max: 200, IsInt: true},
		},
	}, func(p Params) Classifier { return &BayesPointMachine{params: p} })
}

// AveragedPerceptron is the large-margin averaged perceptron of Freund &
// Schapire (1999) — Microsoft's "Averaged Perceptron" entry. The returned
// model is the running average of all intermediate weight vectors, which
// approximates the voted perceptron's margin behaviour at prediction cost
// of a single linear model.
type AveragedPerceptron struct {
	params Params
	w      []float64
	b      float64
}

// Name implements Classifier.
func (*AveragedPerceptron) Name() string { return "perceptron" }

// Fit implements Classifier.
func (a *AveragedPerceptron) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	lr := a.params.Float("learning_rate", 1)
	epochs := a.params.Int("max_iter", 10)
	ys := signedLabels(y)

	w := make([]float64, d)
	b := 0.0
	sumW := make([]float64, d)
	sumB := 0.0
	updates := 1.0
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			if ys[i]*(linalg.Dot(w, x[i])+b) <= 0 {
				linalg.AXPY(lr*ys[i], x[i], w)
				b += lr * ys[i]
			}
			linalg.AXPY(1, w, sumW)
			sumB += b
			updates++
		}
	}
	linalg.Scale(1/updates, sumW)
	a.w = sumW
	a.b = sumB / updates
	return nil
}

// Predict implements Classifier.
func (a *AveragedPerceptron) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if linalg.Dot(a.w, row)+a.b > 0 {
			out[i] = 1
		}
	}
	return out
}

// BayesPointMachine approximates the Bayes point — the centre of mass of
// version space (Herbrich et al. 2001), Microsoft's "Bayes Point Machine".
// We approximate it the way the original paper suggests for practice:
// train an ensemble of perceptrons on randomly permuted data and average
// the normalized weight vectors.
type BayesPointMachine struct {
	params Params
	w      []float64
	b      float64
}

// Name implements Classifier.
func (*BayesPointMachine) Name() string { return "bpm" }

// Fit implements Classifier.
func (m *BayesPointMachine) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	iters := m.params.Int("n_iter", 30)
	if iters < 1 {
		iters = 1
	}
	const committee = 8
	ys := signedLabels(y)

	m.w = make([]float64, d)
	m.b = 0
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for c := 0; c < committee; c++ {
		w := make([]float64, d)
		b := 0.0
		for epoch := 0; epoch < iters; epoch++ {
			r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			mistakes := 0
			for _, i := range order {
				if ys[i]*(linalg.Dot(w, x[i])+b) <= 0 {
					linalg.AXPY(ys[i], x[i], w)
					b += ys[i]
					mistakes++
				}
			}
			if mistakes == 0 {
				break
			}
		}
		// Normalize each committee member so no single run dominates.
		norm := linalg.Norm2(w)
		if norm > 0 {
			linalg.AXPY(1/norm, w, m.w)
			m.b += b / norm
		}
	}
	linalg.Scale(1.0/committee, m.w)
	m.b /= committee
	return nil
}

// Predict implements Classifier.
func (m *BayesPointMachine) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if linalg.Dot(m.w, row)+m.b > 0 {
			out[i] = 1
		}
	}
	return out
}
