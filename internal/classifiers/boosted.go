package classifiers

import (
	"math"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "boosted",
		Label:  "BST",
		Linear: false,
		Params: []ParamSpec{
			{Name: "n_estimators", Kind: Numeric, Default: 50, Min: 1, Max: 150, IsInt: true},
			{Name: "learning_rate", Kind: Numeric, Default: 0.1, Min: 1e-3, Max: 10},
			{Name: "max_leaves", Kind: Numeric, Default: 8, Min: 2, Max: 128, IsInt: true},
			{Name: "min_leaf", Kind: Numeric, Default: 2, Min: 1, Max: 100, IsInt: true},
			{Name: "max_features", Kind: Categorical, Options: []any{"all", "sqrt", "log2"}},
			{Name: "criterion", Kind: Categorical, Options: []any{"mse"}},
		},
	}, func(p Params) Classifier { return &BoostedTrees{params: p} })
}

// BoostedTrees is stochastic gradient boosting (Friedman 2002) with
// regression trees on the logistic loss — the "Boosted Decision Tree"
// entry in Microsoft and the local library. max_leaves bounds tree size by
// limiting depth to ⌈log2(max_leaves)⌉, mirroring Microsoft's
// leaves-per-tree control.
type BoostedTrees struct {
	params Params
	trees  []*treeNode
	lr     float64
	bias   float64
}

// Name implements Classifier.
func (*BoostedTrees) Name() string { return "boosted" }

// Fit implements Classifier.
func (b *BoostedTrees) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, _, err := validateFit(x, y)
	if err != nil {
		return err
	}
	rounds := b.params.Int("n_estimators", 50)
	if rounds < 1 {
		rounds = 1
	}
	b.lr = b.params.Float("learning_rate", 0.1)
	maxLeaves := b.params.Int("max_leaves", 8)
	if maxLeaves < 2 {
		maxLeaves = 2
	}
	depth := int(math.Ceil(math.Log2(float64(maxLeaves))))
	if depth < 1 {
		depth = 1
	}
	cfg := treeConfig{
		maxDepth:    depth,
		minLeaf:     b.params.Int("min_leaf", 2),
		maxFeatures: b.params.String("max_features", "all"),
		criterion:   "mse",
	}
	if cfg.minLeaf < 1 {
		cfg.minLeaf = 1
	}

	// Initialize with the prior log-odds.
	pos := 0
	for _, v := range y {
		pos += v
	}
	p0 := (float64(pos) + 0.5) / (float64(n) + 1)
	b.bias = math.Log(p0 / (1 - p0))

	score := make([]float64, n)
	for i := range score {
		score[i] = b.bias
	}
	residual := make([]float64, n)
	idx := allIndices(n)
	pre := presortFeatures(x) // shared across rounds; residuals change, x doesn't
	mem := &treeMem{}
	b.trees = make([]*treeNode, 0, rounds)
	for round := 0; round < rounds; round++ {
		// Negative gradient of logistic loss: y - sigmoid(score).
		for i := 0; i < n; i++ {
			residual[i] = float64(y[i]) - linalg.Sigmoid(score[i])
		}
		tree := growTreePresorted(pre, mem, x, residual, idx, cfg, r, 0)
		b.trees = append(b.trees, tree)
		for i := 0; i < n; i++ {
			score[i] += b.lr * tree.predict(x[i])
		}
	}
	return nil
}

// Predict implements Classifier.
func (b *BoostedTrees) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if b.score(row) > 0 {
			out[i] = 1
		}
	}
	return out
}

func (b *BoostedTrees) score(row []float64) float64 {
	s := b.bias
	for _, t := range b.trees {
		s += b.lr * t.predict(row)
	}
	return s
}
