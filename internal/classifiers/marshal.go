package classifiers

import (
	"fmt"
	"sort"

	"mlaasbench/internal/codec"
	"mlaasbench/internal/linalg"
)

// Decode limits for fitted-classifier state (MLMF artifacts). Generous
// multiples of anything the training substrate produces, but small enough
// that a forged header cannot drive a pathological allocation: every
// variable-length read below is additionally bounded by the bytes actually
// present in the payload (see codec.Reader).
const (
	maxModelFeatures = 1 << 20 // weight-vector length
	maxModelSamples  = 1 << 22 // kNN training backing rows
	maxTreeNodes     = 1 << 22 // total nodes per tree-ensemble model
	maxEnsembleSize  = 1 << 12 // trees per ensemble / DAGs per jungle
	maxDagLevels     = 1 << 10
	maxDagWidth      = 1 << 16
	maxParamEntries  = 64
	maxParamString   = 1 << 10
)

// Typed parameter-value tags. Params cross the JSON boundary as exactly
// these four types (handleTrain normalizes numbers against the surface
// defaults), and the typed encoding keeps them exact across a round-trip —
// a JSON re-encode would silently turn ints into float64s and change
// Config.String().
const (
	paramFloat = iota + 1
	paramInt
	paramString
	paramBool
)

// AppendParams serializes a Params map with sorted keys (deterministic
// bytes for identical params) and per-value type tags.
func AppendParams(b []byte, p Params) ([]byte, error) {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = codec.AppendU32(b, uint32(len(keys)))
	for _, k := range keys {
		b = codec.AppendString(b, k)
		switch v := p[k].(type) {
		case float64:
			b = codec.AppendU8(b, paramFloat)
			b = codec.AppendF64(b, v)
		case int:
			b = codec.AppendU8(b, paramInt)
			b = codec.AppendI64(b, int64(v))
		case string:
			b = codec.AppendU8(b, paramString)
			b = codec.AppendString(b, v)
		case bool:
			b = codec.AppendU8(b, paramBool)
			b = codec.AppendBool(b, v)
		default:
			return nil, fmt.Errorf("classifiers: cannot serialize param %q of type %T", k, p[k])
		}
	}
	return b, nil
}

// ReadParams decodes a Params map written by AppendParams.
func ReadParams(r *codec.Reader) Params {
	n := r.Count(maxParamEntries, 5) // key count + tag minimum
	p := make(Params, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String(maxParamString)
		switch tag := r.U8(); tag {
		case paramFloat:
			p[k] = r.F64()
		case paramInt:
			p[k] = int(r.I64())
		case paramString:
			p[k] = r.String(maxParamString)
		case paramBool:
			p[k] = r.Bool()
		default:
			r.Fail("unknown param tag %d for %q", tag, k)
		}
	}
	return p
}

// AppendFitted serializes a fitted classifier: registry name, params, then
// the type-specific trained state (weights, trees, training backing). All
// floats round-trip bit-exact, so a decoded model predicts byte-identically
// to the resident one.
func AppendFitted(b []byte, c Classifier) ([]byte, error) {
	b = codec.AppendString(b, c.Name())
	var params Params
	var err error
	switch t := c.(type) {
	case *LogisticRegression:
		params = t.params
	case *LDA:
		params = t.params
	case *LinearSVM:
		params = t.params
	case *AveragedPerceptron:
		params = t.params
	case *BayesPointMachine:
		params = t.params
	case *NaiveBayes:
		params = t.params
	case *KNN:
		params = t.params
	case *MLP:
		params = t.params
	case *DecisionTree:
		params = t.params
	case *Bagging:
		params = t.params
	case *RandomForest:
		params = t.params
	case *BoostedTrees:
		params = t.params
	case *DecisionJungle:
		params = t.params
	default:
		return nil, fmt.Errorf("classifiers: cannot serialize %T", c)
	}
	if b, err = AppendParams(b, params); err != nil {
		return nil, err
	}
	switch t := c.(type) {
	case *LogisticRegression:
		b = codec.AppendF64s(b, t.w)
		b = codec.AppendF64(b, t.b)
		b = codec.AppendBool(b, t.noIntercept)
	case *LDA:
		b = codec.AppendF64s(b, t.w)
		b = codec.AppendF64(b, t.bias)
	case *LinearSVM:
		b = codec.AppendF64s(b, t.w)
		b = codec.AppendF64(b, t.b)
	case *AveragedPerceptron:
		b = codec.AppendF64s(b, t.w)
		b = codec.AppendF64(b, t.b)
	case *BayesPointMachine:
		b = codec.AppendF64s(b, t.w)
		b = codec.AppendF64(b, t.b)
	case *NaiveBayes:
		b = codec.AppendF64(b, t.logPri[0])
		b = codec.AppendF64(b, t.logPri[1])
		for c := 0; c < 2; c++ {
			b = codec.AppendF64s(b, t.mean[c])
			b = codec.AppendF64s(b, t.vari[c])
		}
	case *KNN:
		b = appendMatrix(b, t.x)
		b = codec.AppendInts(b, t.y)
	case *MLP:
		hidden, d := len(t.w1), 0
		if hidden > 0 {
			d = len(t.w1[0])
		}
		b = codec.AppendU32(b, uint32(hidden))
		b = codec.AppendU32(b, uint32(d))
		flat := t.w1flat
		if len(flat) != hidden*d {
			// Models assembled row-by-row (tests) have no flat backing.
			flat = make([]float64, 0, hidden*d)
			for _, row := range t.w1 {
				flat = append(flat, row...)
			}
		}
		for _, v := range flat {
			b = codec.AppendF64(b, v)
		}
		b = codec.AppendF64s(b, t.b1)
		b = codec.AppendF64s(b, t.w2)
		b = codec.AppendF64(b, t.b2)
	case *DecisionTree:
		budget := maxTreeNodes
		b = appendTree(b, t.root, &budget)
	case *Bagging:
		b = appendForest(b, t.trees)
	case *RandomForest:
		b = appendForest(b, t.trees)
	case *BoostedTrees:
		b = appendForest(b, t.trees)
		b = codec.AppendF64(b, t.lr)
		b = codec.AppendF64(b, t.bias)
	case *DecisionJungle:
		b = codec.AppendU32(b, uint32(len(t.dags)))
		for _, dag := range t.dags {
			b = appendDAG(b, dag)
		}
	}
	return b, nil
}

// DecodeFitted reconstructs a fitted classifier written by AppendFitted.
func DecodeFitted(r *codec.Reader) (Classifier, error) {
	name := r.String(maxParamString)
	params := ReadParams(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	var c Classifier
	switch name {
	case "logreg":
		t := &LogisticRegression{params: params}
		t.w = r.F64s(maxModelFeatures)
		t.b = r.F64()
		t.noIntercept = r.Bool()
		c = t
	case "lda":
		t := &LDA{params: params}
		t.w = r.F64s(maxModelFeatures)
		t.bias = r.F64()
		c = t
	case "svm":
		t := &LinearSVM{params: params}
		t.w = r.F64s(maxModelFeatures)
		t.b = r.F64()
		c = t
	case "perceptron":
		t := &AveragedPerceptron{params: params}
		t.w = r.F64s(maxModelFeatures)
		t.b = r.F64()
		c = t
	case "bpm":
		t := &BayesPointMachine{params: params}
		t.w = r.F64s(maxModelFeatures)
		t.b = r.F64()
		c = t
	case "naivebayes":
		t := &NaiveBayes{params: params}
		t.logPri[0] = r.F64()
		t.logPri[1] = r.F64()
		for cl := 0; cl < 2; cl++ {
			t.mean[cl] = r.F64s(maxModelFeatures)
			t.vari[cl] = r.F64s(maxModelFeatures)
		}
		c = t
	case "knn":
		t := &KNN{params: params}
		t.x = readMatrix(r)
		t.y = r.Ints(maxModelSamples)
		if r.Err() == nil {
			if len(t.y) != len(t.x) {
				r.Fail("knn: %d rows vs %d labels", len(t.x), len(t.y))
			} else if len(t.x) > 0 {
				t.xm = linalg.FromRows(t.x)
			}
		}
		c = t
	case "mlp":
		t := &MLP{params: params}
		hidden := r.Count(1<<16, 0)
		d := r.Count(maxModelFeatures, 0)
		if r.Err() == nil && hidden*d*8 > r.Remaining() {
			r.Fail("mlp: %dx%d weights exceed payload", hidden, d)
		}
		if r.Err() == nil {
			t.w1flat = make([]float64, hidden*d)
			for i := range t.w1flat {
				t.w1flat[i] = r.F64()
			}
			t.w1 = make([][]float64, hidden)
			for h := range t.w1 {
				t.w1[h] = t.w1flat[h*d : (h+1)*d : (h+1)*d]
			}
		}
		t.b1 = r.F64s(1 << 16)
		t.w2 = r.F64s(1 << 16)
		t.b2 = r.F64()
		if r.Err() == nil && (len(t.b1) != hidden || len(t.w2) != hidden) {
			r.Fail("mlp: bias/output arity %d/%d vs %d hidden", len(t.b1), len(t.w2), hidden)
		}
		c = t
	case "dtree":
		t := &DecisionTree{params: params}
		budget := maxTreeNodes
		t.root = readTree(r, &budget)
		c = t
	case "bagging":
		t := &Bagging{params: params}
		t.trees = readForest(r)
		c = t
	case "randomforest":
		t := &RandomForest{params: params}
		t.trees = readForest(r)
		c = t
	case "boosted":
		t := &BoostedTrees{params: params}
		t.trees = readForest(r)
		t.lr = r.F64()
		t.bias = r.F64()
		c = t
	case "jungle":
		t := &DecisionJungle{params: params}
		n := r.Count(maxEnsembleSize, 4)
		if r.Err() == nil {
			t.dags = make([]*dagModel, 0, n)
			for i := 0; i < n && r.Err() == nil; i++ {
				t.dags = append(t.dags, readDAG(r))
			}
		}
		c = t
	default:
		return nil, fmt.Errorf("%w: unknown classifier %q", codec.ErrCorrupt, name)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// appendMatrix writes a rectangular [][]float64 as rows, cols, then values
// row-major.
func appendMatrix(b []byte, x [][]float64) []byte {
	rows, cols := len(x), 0
	if rows > 0 {
		cols = len(x[0])
	}
	b = codec.AppendU32(b, uint32(rows))
	b = codec.AppendU32(b, uint32(cols))
	for _, row := range x {
		for _, v := range row {
			b = codec.AppendF64(b, v)
		}
	}
	return b
}

// readMatrix reconstructs a matrix over one flat backing allocation.
func readMatrix(r *codec.Reader) [][]float64 {
	rows := r.Count(maxModelSamples, 0)
	cols := r.Count(maxModelFeatures, 0)
	if r.Err() != nil || rows == 0 {
		return nil
	}
	if rows*cols*8 > r.Remaining() {
		r.Fail("matrix %dx%d exceeds payload", rows, cols)
		return nil
	}
	flat := make([]float64, rows*cols)
	for i := range flat {
		flat[i] = r.F64()
	}
	x := make([][]float64, rows)
	for i := range x {
		x[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return x
}

// Tree serialization: preorder, one record per node (feature i32 as i64,
// threshold, value), children present exactly when feature >= 0. Encoding
// and decoding both run iteratively with an explicit stack, so a
// degenerate path-shaped tree cannot overflow the goroutine stack, and a
// shared node budget bounds the total allocation across an ensemble.

func appendTree(b []byte, root *treeNode, budget *int) []byte {
	stack := []*treeNode{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		*budget--
		b = codec.AppendI64(b, int64(n.feature))
		b = codec.AppendF64(b, n.threshold)
		b = codec.AppendF64(b, n.value)
		if n.feature >= 0 {
			stack = append(stack, n.right, n.left) // left pops first: preorder
		}
	}
	return b
}

func readTree(r *codec.Reader, budget *int) *treeNode {
	var root *treeNode
	slots := []**treeNode{&root}
	for len(slots) > 0 && r.Err() == nil {
		slot := slots[len(slots)-1]
		slots = slots[:len(slots)-1]
		*budget--
		if *budget < 0 {
			r.Fail("tree exceeds %d-node budget", maxTreeNodes)
			return nil
		}
		feature := int(r.I64())
		n := &treeNode{feature: feature, threshold: r.F64(), value: r.F64()}
		if feature >= maxModelFeatures || feature < -1 {
			r.Fail("tree node feature %d out of range", feature)
			return nil
		}
		if feature >= 0 {
			slots = append(slots, &n.right, &n.left)
		}
		*slot = n
	}
	return root
}

func appendForest(b []byte, trees []*treeNode) []byte {
	b = codec.AppendU32(b, uint32(len(trees)))
	budget := maxTreeNodes
	for _, t := range trees {
		b = appendTree(b, t, &budget)
	}
	return b
}

func readForest(r *codec.Reader) []*treeNode {
	// Every tree is at least one 20-byte leaf record.
	n := r.Count(maxEnsembleSize, 20)
	if r.Err() != nil || n == 0 {
		return nil
	}
	trees := make([]*treeNode, 0, n)
	budget := maxTreeNodes
	for i := 0; i < n && r.Err() == nil; i++ {
		trees = append(trees, readTree(r, &budget))
	}
	return trees
}

// DAG serialization: levels outer-to-inner, each node as (feature i64,
// threshold, left i64, right i64, value). Child indices are validated
// against the next level's width at decode time, so a corrupt artifact can
// never drive predict out of range.

func appendDAG(b []byte, d *dagModel) []byte {
	b = codec.AppendU32(b, uint32(len(d.levels)))
	for _, level := range d.levels {
		b = codec.AppendU32(b, uint32(len(level)))
		for _, n := range level {
			b = codec.AppendI64(b, int64(n.feature))
			b = codec.AppendF64(b, n.threshold)
			b = codec.AppendI64(b, int64(n.left))
			b = codec.AppendI64(b, int64(n.right))
			b = codec.AppendF64(b, n.value)
		}
	}
	return b
}

func readDAG(r *codec.Reader) *dagModel {
	nLevels := r.Count(maxDagLevels, 4)
	if r.Err() != nil {
		return nil
	}
	d := &dagModel{levels: make([][]dagNode, 0, nLevels)}
	for li := 0; li < nLevels && r.Err() == nil; li++ {
		width := r.Count(maxDagWidth, 40) // 40 bytes per node record
		level := make([]dagNode, width)
		for ni := range level {
			level[ni] = dagNode{
				feature:   int(r.I64()),
				threshold: r.F64(),
				left:      int(r.I64()),
				right:     int(r.I64()),
				value:     r.F64(),
			}
		}
		d.levels = append(d.levels, level)
	}
	if r.Err() != nil {
		return nil
	}
	// Structural validation: internal nodes must point into the next level.
	for li, level := range d.levels {
		for ni, n := range level {
			if n.feature < -1 || n.feature >= maxModelFeatures {
				r.Fail("dag level %d node %d: feature %d out of range", li, ni, n.feature)
				return nil
			}
			if n.feature < 0 {
				continue
			}
			if li+1 >= len(d.levels) {
				continue // predict treats last-level internals as leaves
			}
			next := len(d.levels[li+1])
			if n.left < 0 || n.left >= next || n.right < 0 || n.right >= next {
				r.Fail("dag level %d node %d: child %d/%d outside next level %d", li, ni, n.left, n.right, next)
				return nil
			}
		}
	}
	return d
}
