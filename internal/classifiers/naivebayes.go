package classifiers

import (
	"math"

	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "naivebayes",
		Label:  "NB",
		Linear: true,
		Params: []ParamSpec{
			{Name: "prior", Kind: Categorical, Options: []any{"empirical", "uniform"}},
			{Name: "lambda", Kind: Numeric, Default: 1e-9, Min: 1e-12, Max: 1.0},
		},
	}, func(p Params) Classifier { return &NaiveBayes{params: p} })
}

// NaiveBayes is Gaussian naive Bayes: per-class, per-feature normal
// likelihoods with either empirical or uniform class priors. The lambda
// parameter adds variance smoothing (PredictionIO's NB lambda control).
type NaiveBayes struct {
	params Params
	logPri [2]float64
	mean   [2][]float64
	vari   [2][]float64
}

// Name implements Classifier.
func (*NaiveBayes) Name() string { return "naivebayes" }

// Fit implements Classifier.
func (nb *NaiveBayes) Fit(x [][]float64, y []int, _ *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	var count [2]float64
	for c := 0; c < 2; c++ {
		nb.mean[c] = make([]float64, d)
		nb.vari[c] = make([]float64, d)
	}
	for i, row := range x {
		c := y[i]
		count[c]++
		for j, v := range row {
			nb.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			continue
		}
		for j := range nb.mean[c] {
			nb.mean[c][j] /= count[c]
		}
	}
	// Global variance scale for smoothing, as scikit-learn does.
	globalVar := 0.0
	for i, row := range x {
		c := y[i]
		for j, v := range row {
			dv := v - nb.mean[c][j]
			nb.vari[c][j] += dv * dv
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			continue
		}
		for j := range nb.vari[c] {
			nb.vari[c][j] /= count[c]
			globalVar += nb.vari[c][j]
		}
	}
	globalVar /= float64(2 * d)
	lambda := nb.params.Float("lambda", 1e-9)
	eps := lambda*globalVar + 1e-12
	for c := 0; c < 2; c++ {
		for j := range nb.vari[c] {
			nb.vari[c][j] += eps
		}
	}

	switch nb.params.String("prior", "empirical") {
	case "uniform":
		nb.logPri[0], nb.logPri[1] = math.Log(0.5), math.Log(0.5)
	default:
		for c := 0; c < 2; c++ {
			p := count[c] / float64(n)
			if p == 0 {
				p = 1e-12
			}
			nb.logPri[c] = math.Log(p)
		}
	}
	// Degenerate single-class training: force the prior to dominate.
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			nb.logPri[c] = math.Inf(-1)
			for j := range nb.vari[c] {
				nb.vari[c][j] = 1
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if nb.logPosterior(row, 1) > nb.logPosterior(row, 0) {
			out[i] = 1
		}
	}
	return out
}

func (nb *NaiveBayes) logPosterior(row []float64, c int) float64 {
	lp := nb.logPri[c]
	for j, v := range row {
		variance := nb.vari[c][j]
		dv := v - nb.mean[c][j]
		lp += -0.5*math.Log(2*math.Pi*variance) - dv*dv/(2*variance)
	}
	return lp
}
