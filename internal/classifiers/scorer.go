package classifiers

import (
	"math"
	"sort"

	"mlaasbench/internal/linalg"
)

// Scorer is the optional interface for classifiers that can output a
// real-valued prediction score (larger = more confident in class 1). The
// paper notes that several production platforms hide scores (§3.2), which
// ruled out AUC there; every classifier in this substrate *can* score, and
// the platform layer decides whether to expose it.
type Scorer interface {
	// PredictScore returns one score per row; thresholding at the model's
	// decision point reproduces Predict.
	PredictScore(x [][]float64) []float64
}

// PredictScore implements Scorer: the class-1 probability.
func (l *LogisticRegression) PredictScore(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = linalg.Sigmoid(linalg.Dot(l.w, row) + l.b)
	}
	return out
}

// PredictScore implements Scorer: the log-posterior margin.
func (nb *NaiveBayes) PredictScore(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = nb.logPosterior(row, 1) - nb.logPosterior(row, 0)
	}
	return out
}

// PredictScore implements Scorer: the signed margin.
func (s *LinearSVM) PredictScore(x [][]float64) []float64 {
	return linearScores(s.w, s.b, x)
}

// PredictScore implements Scorer: the signed discriminant value.
func (l *LDA) PredictScore(x [][]float64) []float64 {
	return linearScores(l.w, l.bias, x)
}

// PredictScore implements Scorer: the signed margin of the averaged model.
func (a *AveragedPerceptron) PredictScore(x [][]float64) []float64 {
	return linearScores(a.w, a.b, x)
}

// PredictScore implements Scorer: the committee-average margin.
func (m *BayesPointMachine) PredictScore(x [][]float64) []float64 {
	return linearScores(m.w, m.b, x)
}

func linearScores(w []float64, b float64, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = linalg.Dot(w, row) + b
	}
	return out
}

// PredictScore implements Scorer: the (weighted) neighbour vote fraction.
func (k *KNN) PredictScore(x [][]float64) []float64 {
	kk := k.params.Int("n_neighbors", 5)
	if kk > len(k.x) {
		kk = len(k.x)
	}
	if kk < 1 {
		kk = 1
	}
	p := k.params.Float("p", 2)
	if p < 1 {
		p = 1
	}
	distWeighted := k.params.String("weights", "uniform") == "distance"
	out := make([]float64, len(x))
	type nd struct {
		dist float64
		y    int
	}
	for qi, q := range x {
		nds := make([]nd, len(k.x))
		for i, row := range k.x {
			var dist float64
			if p == 2 {
				dist = linalg.SquaredEuclidean(row, q)
			} else {
				dist = linalg.MinkowskiDistance(row, q, p)
			}
			nds[i] = nd{dist: dist, y: k.y[i]}
		}
		sort.Slice(nds, func(a, b int) bool { return nds[a].dist < nds[b].dist })
		var votes [2]float64
		for i := 0; i < kk; i++ {
			wgt := 1.0
			if distWeighted {
				wgt = 1 / (nds[i].dist + 1e-9)
			}
			votes[nds[i].y] += wgt
		}
		total := votes[0] + votes[1]
		if total > 0 {
			out[qi] = votes[1]/total - 0.5
		}
	}
	return out
}

// PredictScore implements Scorer: the leaf's class-1 probability, centered.
func (t *DecisionTree) PredictScore(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = t.root.predict(row) - 0.5
	}
	return out
}

// PredictScore implements Scorer: the ensemble's mean leaf probability,
// centered.
func (b *Bagging) PredictScore(x [][]float64) []float64 {
	return ensembleScores(b.trees, x)
}

// PredictScore implements Scorer: the forest's mean leaf probability,
// centered.
func (f *RandomForest) PredictScore(x [][]float64) []float64 {
	return ensembleScores(f.trees, x)
}

func ensembleScores(trees []*treeNode, x [][]float64) []float64 {
	out := make([]float64, len(x))
	if len(trees) == 0 {
		return out
	}
	for i, row := range x {
		sum := 0.0
		for _, t := range trees {
			sum += t.predict(row)
		}
		out[i] = sum/float64(len(trees)) - 0.5
	}
	return out
}

// PredictScore implements Scorer: the boosted additive score (log-odds).
func (b *BoostedTrees) PredictScore(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = b.score(row)
	}
	return out
}

// PredictScore implements Scorer: the DAG-ensemble vote fraction, centered.
func (j *DecisionJungle) PredictScore(x [][]float64) []float64 {
	out := make([]float64, len(x))
	if len(j.dags) == 0 {
		return out
	}
	for i, row := range x {
		sum := 0.0
		for _, dag := range j.dags {
			sum += dag.predict(row)
		}
		out[i] = sum/float64(len(j.dags)) - 0.5
	}
	return out
}

// PredictScore implements Scorer: the pre-sigmoid network output.
func (m *MLP) PredictScore(x [][]float64) []float64 {
	// Reuse Predict's forward pass but keep the raw logit.
	hidden := len(m.w1)
	activation := m.params.String("activation", "relu")
	out := make([]float64, len(x))
	for i, row := range x {
		z2 := m.b2
		for h := 0; h < hidden; h++ {
			z := linalg.Dot(m.w1[h], row) + m.b1[h]
			var a float64
			switch activation {
			case "tanh":
				a = math.Tanh(z)
			case "logistic":
				a = linalg.Sigmoid(z)
			default:
				if z > 0 {
					a = z
				}
			}
			z2 += m.w2[h] * a
		}
		out[i] = z2
	}
	return out
}
