package classifiers

import (
	"math"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "logreg",
		Label:  "LR",
		Linear: true,
		Params: []ParamSpec{
			{Name: "penalty", Kind: Categorical, Options: []any{"l2", "l1"}},
			// C below 0.1 collapses the model to the majority class under
			// the 1/(C·n) sum-loss convention; §3.2's validity screening
			// ("manually examine ... acceptable value range") bounds the
			// grid accordingly.
			{Name: "C", Kind: Numeric, Default: 1.0, Min: 0.1, Max: 1e4},
			{Name: "solver", Kind: Categorical, Options: []any{"sgd", "newton"}},
			{Name: "max_iter", Kind: Numeric, Default: 100, Min: 1, Max: 500, IsInt: true},
			{Name: "tol", Kind: Numeric, Default: 1e-4, Min: 1e-8, Max: 1e-1},
			{Name: "shuffle", Kind: Categorical, Options: []any{"true", "false"}},
			{Name: "fit_intercept", Kind: Categorical, Options: []any{"true", "false"}},
		},
	}, func(p Params) Classifier { return &LogisticRegression{params: p} })
}

// LogisticRegression is a binary logistic-regression classifier with L1/L2
// regularization. Two solvers are available: "sgd" (stochastic gradient
// descent with the shuffleType control Amazon exposes) and "newton" (IRLS,
// standing in for scikit-learn's lbfgs/liblinear family). Regularization
// strength is 1/C, matching scikit-learn's convention.
type LogisticRegression struct {
	params      Params
	w           []float64
	b           float64
	noIntercept bool
}

// Name implements Classifier.
func (*LogisticRegression) Name() string { return "logreg" }

// Fit implements Classifier.
func (l *LogisticRegression) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	l.w = make([]float64, d)
	l.b = 0
	l.noIntercept = l.params.String("fit_intercept", "true") == "false"
	switch l.params.String("solver", "sgd") {
	case "newton":
		l.fitNewton(x, y, n, d)
	default:
		l.fitSGD(x, y, n, d, r)
	}
	return nil
}

func (l *LogisticRegression) fitSGD(x [][]float64, y []int, n, d int, r *rng.RNG) {
	c := l.params.Float("C", 1)
	lambda := 1 / (c * float64(n))
	penalty := l.params.String("penalty", "l2")
	maxIter := l.params.Int("max_iter", 100)
	tol := l.params.Float("tol", 1e-4)
	shuffle := l.params.String("shuffle", "true") == "true"

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Resolved outside the weight loop — the string switch ran per weight
	// per sample and was measurable across the sweep.
	l1 := penalty == "l1"
	prevLoss := math.Inf(1)
	for epoch := 0; epoch < maxIter; epoch++ {
		if shuffle {
			r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		lr := 1.0 / (1.0 + 0.1*float64(epoch))
		for _, i := range order {
			xi := x[i]
			p := linalg.Sigmoid(linalg.Dot(l.w, xi) + l.b)
			g := p - float64(y[i])
			w := l.w[:len(xi)]
			if l1 {
				for j, xj := range xi {
					grad := g*xj + lambda*sign(w[j])
					w[j] -= lr * grad
				}
			} else {
				for j, xj := range xi {
					grad := g*xj + lambda*w[j]
					w[j] -= lr * grad
				}
			}
			if !l.noIntercept {
				l.b -= lr * g
			}
		}
		loss := l.loss(x, y, lambda, penalty)
		if math.Abs(prevLoss-loss) < tol {
			break
		}
		prevLoss = loss
	}
}

// fitNewton runs iteratively reweighted least squares with an L2 ridge
// proportional to 1/C (L1 is approximated by ridge here; the solver choice
// is itself a measured control, so fidelity of the penalty under newton
// matters less than having two distinct solvers).
func (l *LogisticRegression) fitNewton(x [][]float64, y []int, n, d int) {
	c := l.params.Float("C", 1)
	lambda := 1 / c
	maxIter := l.params.Int("max_iter", 100)
	if maxIter > 50 {
		maxIter = 50 // Newton converges in far fewer steps than SGD
	}
	tol := l.params.Float("tol", 1e-4)

	// Work in homogeneous coordinates: theta = [w..., b].
	dim := d + 1
	theta := make([]float64, dim)
	for iter := 0; iter < maxIter; iter++ {
		grad := make([]float64, dim)
		hess := linalg.NewMatrix(dim, dim)
		for i := 0; i < n; i++ {
			z := theta[d]
			for j, xj := range x[i] {
				z += theta[j] * xj
			}
			p := linalg.Sigmoid(z)
			g := p - float64(y[i])
			wgt := p * (1 - p)
			for a := 0; a < dim; a++ {
				xa := 1.0
				if a < d {
					xa = x[i][a]
				}
				grad[a] += g * xa
				ha := hess.Row(a)
				for b := a; b < dim; b++ {
					xb := 1.0
					if b < d {
						xb = x[i][b]
					}
					ha[b] += wgt * xa * xb
				}
			}
		}
		// Symmetrize and regularize (bias not penalized).
		for a := 0; a < dim; a++ {
			for b := 0; b < a; b++ {
				hess.Set(a, b, hess.At(b, a))
			}
		}
		for j := 0; j < d; j++ {
			grad[j] += lambda * theta[j]
			hess.Set(j, j, hess.At(j, j)+lambda)
		}
		step := linalg.SolveRidge(hess, grad, 1e-8)
		maxStep := 0.0
		for a := 0; a < dim; a++ {
			theta[a] -= step[a]
			maxStep = math.Max(maxStep, math.Abs(step[a]))
		}
		if l.noIntercept {
			theta[d] = 0
		}
		if maxStep < tol {
			break
		}
	}
	copy(l.w, theta[:d])
	l.b = theta[d]
}

func (l *LogisticRegression) loss(x [][]float64, y []int, lambda float64, penalty string) float64 {
	loss := 0.0
	for i := range x {
		z := linalg.Dot(l.w, x[i]) + l.b
		if y[i] == 1 {
			loss += linalg.LogSumExp(0, -z)
		} else {
			loss += linalg.LogSumExp(0, z)
		}
	}
	loss /= float64(len(x))
	reg := 0.0
	if penalty == "l1" {
		reg = linalg.Norm1(l.w)
	} else {
		reg = 0.5 * linalg.Dot(l.w, l.w)
	}
	return loss + lambda*reg
}

// Predict implements Classifier. The fused DotBias kernel rounds exactly
// like Dot(w, row) + b, so predictions are unchanged.
func (l *LogisticRegression) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if linalg.DotBias(l.b, l.w, row) > 0 {
			out[i] = 1
		}
	}
	return out
}

// Weights exposes the learned coefficients (used by tests and diagnostics).
func (l *LogisticRegression) Weights() ([]float64, float64) { return l.w, l.b }

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
