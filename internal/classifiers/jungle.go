package classifiers

import (
	"math"
	"sort"

	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "jungle",
		Label:  "DJ",
		Linear: false,
		Params: []ParamSpec{
			{Name: "n_dags", Kind: Numeric, Default: 8, Min: 1, Max: 40, IsInt: true},
			{Name: "max_depth", Kind: Numeric, Default: 8, Min: 1, Max: 32, IsInt: true},
			{Name: "max_width", Kind: Numeric, Default: 16, Min: 2, Max: 256, IsInt: true},
			{Name: "opt_steps", Kind: Numeric, Default: 2, Min: 1, Max: 32, IsInt: true},
		},
	}, func(p Params) Classifier { return &DecisionJungle{params: p} })
}

// DecisionJungle implements decision jungles (Shotton et al. 2013) —
// Microsoft's memory-bounded alternative to forests: an ensemble of rooted
// decision DAGs whose per-level width is capped, forcing nodes to merge.
// Training grows each DAG level-by-level: nodes split greedily as in CART,
// then the level's children are merged down to max_width by repeatedly
// joining the pair of nodes whose union least increases impurity
// (opt_steps controls how many merge-refinement passes run per level).
type DecisionJungle struct {
	params Params
	dags   []*dagModel
}

type dagNode struct {
	feature   int // -1 for leaf
	threshold float64
	left      int // index into next level (or -1)
	right     int
	value     float64 // class-1 probability at this node
}

type dagModel struct {
	levels [][]dagNode
}

// Name implements Classifier.
func (*DecisionJungle) Name() string { return "jungle" }

// Fit implements Classifier.
func (j *DecisionJungle) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, _, err := validateFit(x, y)
	if err != nil {
		return err
	}
	nDags := j.params.Int("n_dags", 8)
	if nDags < 1 {
		nDags = 1
	}
	j.dags = make([]*dagModel, nDags)
	for t := 0; t < nDags; t++ {
		idx := bootstrapIndices(n, r)
		j.dags[t] = j.growDAG(x, y, idx, r)
	}
	return nil
}

// growDAG builds one width-limited DAG.
func (j *DecisionJungle) growDAG(x [][]float64, y []int, idx []int, r *rng.RNG) *dagModel {
	maxDepth := j.params.Int("max_depth", 8)
	maxWidth := j.params.Int("max_width", 16)
	optSteps := j.params.Int("opt_steps", 2)
	if maxWidth < 2 {
		maxWidth = 2
	}
	target := labelsToFloats(y)
	cfg := treeConfig{criterion: "gini", minLeaf: 1, maxFeatures: "sqrt", randomSplits: 4 * optSteps}

	dag := &dagModel{}
	// current holds, for each live node of the level, the sample indices
	// routed to it.
	current := [][]int{idx}
	for depth := 0; depth < maxDepth; depth++ {
		level := make([]dagNode, len(current))
		var nextGroups [][]int
		splitAny := false
		for ni, group := range current {
			node := dagNode{feature: -1, value: meanAt(target, group)}
			if len(group) >= 4 && !pureAt(target, group) {
				// Greedy split: evaluate sampled features/thresholds.
				d := len(x[0])
				bestScore := math.Inf(1)
				for _, f := range r.Sample(d, cfg.featureCount(d)) {
					thr, score, ok := bestSplit(x, target, group, f, cfg, r)
					if ok && score < bestScore {
						bestScore = score
						node.feature = f
						node.threshold = thr
					}
				}
			}
			if node.feature >= 0 {
				var l, rt []int
				for _, i := range group {
					if x[i][node.feature] <= node.threshold {
						l = append(l, i)
					} else {
						rt = append(rt, i)
					}
				}
				if len(l) == 0 || len(rt) == 0 {
					node.feature = -1
				} else {
					node.left = len(nextGroups)
					nextGroups = append(nextGroups, l)
					node.right = len(nextGroups)
					nextGroups = append(nextGroups, rt)
					splitAny = true
				}
			}
			if node.feature < 0 {
				node.left, node.right = -1, -1
			}
			level[ni] = node
		}
		dag.levels = append(dag.levels, level)
		if !splitAny {
			break
		}
		// Width limiting: merge most-similar child groups until ≤ maxWidth.
		for len(nextGroups) > maxWidth {
			a, b := mostSimilarPair(nextGroups, target)
			merged := append(append([]int(nil), nextGroups[a]...), nextGroups[b]...)
			// Remap child pointers: b → a, and shift everything past b.
			for ni := range level {
				remap := func(p int) int {
					switch {
					case p == b:
						return a
					case p > b:
						return p - 1
					default:
						return p
					}
				}
				if level[ni].feature >= 0 {
					level[ni].left = remap(level[ni].left)
					level[ni].right = remap(level[ni].right)
				}
			}
			nextGroups[a] = merged
			nextGroups = append(nextGroups[:b], nextGroups[b+1:]...)
		}
		current = nextGroups
	}
	// Terminal level: force leaves.
	last := len(dag.levels) - 1
	if last >= 0 {
		// If the loop exited by depth, current still holds unprocessed
		// groups — append them as a pure leaf level.
		if len(current) > 0 && dagHasOpenChildren(dag.levels[last]) {
			leafLevel := make([]dagNode, len(current))
			for ni, group := range current {
				leafLevel[ni] = dagNode{feature: -1, left: -1, right: -1, value: meanAt(target, group)}
			}
			dag.levels = append(dag.levels, leafLevel)
		}
	}
	return dag
}

func dagHasOpenChildren(level []dagNode) bool {
	for _, n := range level {
		if n.feature >= 0 {
			return true
		}
	}
	return false
}

// mostSimilarPair returns the two group indices whose class-1 rates are
// closest — the cheap merge criterion standing in for the paper's
// impurity-increase minimization.
func mostSimilarPair(groups [][]int, target []float64) (int, int) {
	type rate struct {
		idx int
		p   float64
	}
	rates := make([]rate, len(groups))
	for i, g := range groups {
		rates[i] = rate{idx: i, p: meanAt(target, g)}
	}
	sort.Slice(rates, func(a, b int) bool { return rates[a].p < rates[b].p })
	bestA, bestB := rates[0].idx, rates[1].idx
	bestGap := math.Inf(1)
	for i := 1; i < len(rates); i++ {
		if gap := rates[i].p - rates[i-1].p; gap < bestGap {
			bestGap = gap
			bestA, bestB = rates[i-1].idx, rates[i].idx
		}
	}
	if bestA > bestB {
		bestA, bestB = bestB, bestA
	}
	return bestA, bestB
}

// Predict implements Classifier.
func (j *DecisionJungle) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		sum := 0.0
		for _, dag := range j.dags {
			sum += dag.predict(row)
		}
		if sum > float64(len(j.dags))/2 {
			out[i] = 1
		}
	}
	return out
}

func (d *dagModel) predict(row []float64) float64 {
	if len(d.levels) == 0 {
		return 0
	}
	cur := 0
	for li := 0; li < len(d.levels); li++ {
		node := d.levels[li][cur]
		if node.feature < 0 || li == len(d.levels)-1 {
			return node.value
		}
		if row[node.feature] <= node.threshold {
			cur = node.left
		} else {
			cur = node.right
		}
		if cur < 0 {
			return node.value
		}
	}
	lastLevel := d.levels[len(d.levels)-1]
	if cur < len(lastLevel) {
		return lastLevel[cur].value
	}
	return 0
}
