package classifiers

import (
	"math"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "mlp",
		Label:  "MLP",
		Linear: false,
		Params: []ParamSpec{
			{Name: "activation", Kind: Categorical, Options: []any{"relu", "tanh", "logistic"}},
			{Name: "solver", Kind: Categorical, Options: []any{"adam", "sgd"}},
			{Name: "alpha", Kind: Numeric, Default: 1e-4, Min: 1e-8, Max: 10},
			{Name: "hidden", Kind: Numeric, Default: 16, Min: 2, Max: 256, IsInt: true},
			{Name: "max_iter", Kind: Numeric, Default: 60, Min: 2, Max: 200, IsInt: true},
		},
	}, func(p Params) Classifier { return &MLP{params: p} })
}

// MLP is a one-hidden-layer multi-layer perceptron trained by backprop on
// the logistic loss, with the scikit-learn surface from Table 1:
// activation (relu/tanh/logistic), solver (sgd/adam) and L2 penalty alpha.
type MLP struct {
	params Params
	// w1[h][j]: input j → hidden h, b1[h]; w2[h]: hidden h → output, b2.
	w1 [][]float64
	b1 []float64
	w2 []float64
	b2 float64
}

// Name implements Classifier.
func (*MLP) Name() string { return "mlp" }

// Fit implements Classifier.
func (m *MLP) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	hidden := m.params.Int("hidden", 16)
	if hidden < 2 {
		hidden = 2
	}
	alpha := m.params.Float("alpha", 1e-4)
	epochs := m.params.Int("max_iter", 60)
	activation := m.params.String("activation", "relu")
	adam := m.params.String("solver", "adam") == "adam"

	// He/Xavier-style init.
	scale := math.Sqrt(2 / float64(d))
	m.w1 = make([][]float64, hidden)
	m.b1 = make([]float64, hidden)
	m.w2 = make([]float64, hidden)
	for h := range m.w1 {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64() * scale
		}
		m.w1[h] = row
		m.w2[h] = r.NormFloat64() * math.Sqrt(2/float64(hidden))
	}
	m.b2 = 0

	// Adam state.
	type adamState struct{ m, v float64 }
	var (
		aw1 [][]adamState
		ab1 []adamState
		aw2 []adamState
		ab2 adamState
	)
	if adam {
		aw1 = make([][]adamState, hidden)
		for h := range aw1 {
			aw1[h] = make([]adamState, d)
		}
		ab1 = make([]adamState, hidden)
		aw2 = make([]adamState, hidden)
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0
	// Incrementally maintained powers of beta for Adam's bias correction —
	// recomputing math.Pow per weight dominates training cost otherwise.
	beta1Pow, beta2Pow := 1.0, 1.0
	corr1, corr2 := 1.0, 1.0

	act := func(z float64) float64 {
		switch activation {
		case "tanh":
			return math.Tanh(z)
		case "logistic":
			return linalg.Sigmoid(z)
		default:
			if z > 0 {
				return z
			}
			return 0
		}
	}
	actGrad := func(z, a float64) float64 {
		switch activation {
		case "tanh":
			return 1 - a*a
		case "logistic":
			return a * (1 - a)
		default:
			if z > 0 {
				return 1
			}
			return 0
		}
	}

	update := func(g float64, state *adamState, w *float64, lr float64) {
		if !adam {
			*w -= lr * g
			return
		}
		state.m = beta1*state.m + (1-beta1)*g
		state.v = beta2*state.v + (1-beta2)*g*g
		mhat := state.m * corr1
		vhat := state.v * corr2
		*w -= lr * mhat / (math.Sqrt(vhat) + eps)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	z1 := make([]float64, hidden)
	a1 := make([]float64, hidden)
	for epoch := 0; epoch < epochs; epoch++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := 0.01
		if !adam {
			lr = 0.1 / (1 + 0.05*float64(epoch))
		}
		for _, i := range order {
			step++
			beta1Pow *= beta1
			beta2Pow *= beta2
			corr1 = 1 / (1 - beta1Pow)
			corr2 = 1 / (1 - beta2Pow)
			// Forward.
			for h := 0; h < hidden; h++ {
				z1[h] = linalg.Dot(m.w1[h], x[i]) + m.b1[h]
				a1[h] = act(z1[h])
			}
			z2 := linalg.Dot(m.w2, a1) + m.b2
			p := linalg.Sigmoid(z2)
			// Backward: dLoss/dz2 = p - y.
			g2 := p - float64(y[i])
			for h := 0; h < hidden; h++ {
				gw2 := g2*a1[h] + alpha*m.w2[h]/float64(n)
				gh := g2 * m.w2[h] * actGrad(z1[h], a1[h])
				if adam {
					update(gw2, &aw2[h], &m.w2[h], lr)
				} else {
					update(gw2, nil, &m.w2[h], lr)
				}
				for j, xj := range x[i] {
					gw1 := gh*xj + alpha*m.w1[h][j]/float64(n)
					if adam {
						update(gw1, &aw1[h][j], &m.w1[h][j], lr)
					} else {
						update(gw1, nil, &m.w1[h][j], lr)
					}
				}
				if adam {
					update(gh, &ab1[h], &m.b1[h], lr)
				} else {
					update(gh, nil, &m.b1[h], lr)
				}
			}
			if adam {
				update(g2, &ab2, &m.b2, lr)
			} else {
				update(g2, nil, &m.b2, lr)
			}
		}
	}
	return nil
}

// Predict implements Classifier.
func (m *MLP) Predict(x [][]float64) []int {
	hidden := len(m.w1)
	activation := m.params.String("activation", "relu")
	out := make([]int, len(x))
	for i, row := range x {
		z2 := m.b2
		for h := 0; h < hidden; h++ {
			z := linalg.Dot(m.w1[h], row) + m.b1[h]
			var a float64
			switch activation {
			case "tanh":
				a = math.Tanh(z)
			case "logistic":
				a = linalg.Sigmoid(z)
			default:
				if z > 0 {
					a = z
				}
			}
			z2 += m.w2[h] * a
		}
		if z2 > 0 {
			out[i] = 1
		}
	}
	return out
}
