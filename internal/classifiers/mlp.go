package classifiers

import (
	"math"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "mlp",
		Label:  "MLP",
		Linear: false,
		Params: []ParamSpec{
			{Name: "activation", Kind: Categorical, Options: []any{"relu", "tanh", "logistic"}},
			{Name: "solver", Kind: Categorical, Options: []any{"adam", "sgd"}},
			{Name: "alpha", Kind: Numeric, Default: 1e-4, Min: 1e-8, Max: 10},
			{Name: "hidden", Kind: Numeric, Default: 16, Min: 2, Max: 256, IsInt: true},
			{Name: "max_iter", Kind: Numeric, Default: 60, Min: 2, Max: 200, IsInt: true},
		},
	}, func(p Params) Classifier { return &MLP{params: p} })
}

// MLP is a one-hidden-layer multi-layer perceptron trained by backprop on
// the logistic loss, with the scikit-learn surface from Table 1:
// activation (relu/tanh/logistic), solver (sgd/adam) and L2 penalty alpha.
type MLP struct {
	params Params
	// w1[h][j]: input j → hidden h, b1[h]; w2[h]: hidden h → output, b2.
	w1 [][]float64
	b1 []float64
	w2 []float64
	b2 float64
	// w1flat is w1's contiguous backing array, kept so Predict can wrap the
	// weights as a row-major matrix for the batch GEMM without copying.
	w1flat []float64
}

// Hidden-activation kinds, resolved once per fit/predict instead of
// string-switching per (sample, unit).
const (
	actReLU = iota
	actTanh
	actLogistic
)

func actKindOf(activation string) int {
	switch activation {
	case "tanh":
		return actTanh
	case "logistic":
		return actLogistic
	default:
		return actReLU
	}
}

// Name implements Classifier.
func (*MLP) Name() string { return "mlp" }

// Fit implements Classifier.
func (m *MLP) Fit(x [][]float64, y []int, r *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	hidden := m.params.Int("hidden", 16)
	if hidden < 2 {
		hidden = 2
	}
	alpha := m.params.Float("alpha", 1e-4)
	epochs := m.params.Int("max_iter", 60)
	activation := m.params.String("activation", "relu")
	adam := m.params.String("solver", "adam") == "adam"

	// He/Xavier-style init. The weight rows share one contiguous backing
	// array — the training loop streams over all of them every sample, and
	// per-row allocations cost a pointer chase per hidden unit.
	scale := math.Sqrt(2 / float64(d))
	w1backing := make([]float64, hidden*d)
	m.w1 = make([][]float64, hidden)
	m.b1 = make([]float64, hidden)
	m.w2 = make([]float64, hidden)
	for h := range m.w1 {
		row := w1backing[h*d : (h+1)*d : (h+1)*d]
		for j := range row {
			row[j] = r.NormFloat64() * scale
		}
		m.w1[h] = row
		m.w2[h] = r.NormFloat64() * math.Sqrt(2/float64(hidden))
	}
	m.w1flat = w1backing // rows alias it, so trained values stay current
	m.b2 = 0

	// Adam state.
	type adamState struct{ m, v float64 }
	var (
		aw1 [][]adamState
		ab1 []adamState
		aw2 []adamState
		ab2 adamState
	)
	if adam {
		aw1backing := make([]adamState, hidden*d)
		aw1 = make([][]adamState, hidden)
		for h := range aw1 {
			aw1[h] = aw1backing[h*d : (h+1)*d : (h+1)*d]
		}
		ab1 = make([]adamState, hidden)
		aw2 = make([]adamState, hidden)
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	// Incrementally maintained powers of beta for Adam's bias correction —
	// recomputing math.Pow per weight dominates training cost otherwise.
	beta1Pow, beta2Pow := 1.0, 1.0
	corr1, corr2 := 1.0, 1.0

	// The activation switch and the per-weight update are inlined into the
	// training loop rather than closures: the update runs hidden×d times
	// per sample and the call overhead is the single largest cost of the
	// whole fit. The arithmetic is kept expression-for-expression identical
	// to the closure form, so trained weights are bit-identical.
	actKind := actKindOf(activation)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	z1 := make([]float64, hidden)
	a1 := make([]float64, hidden)
	nf := float64(n)
	for epoch := 0; epoch < epochs; epoch++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := 0.01
		if !adam {
			lr = 0.1 / (1 + 0.05*float64(epoch))
		}
		for _, i := range order {
			beta1Pow *= beta1
			beta2Pow *= beta2
			corr1 = 1 / (1 - beta1Pow)
			corr2 = 1 / (1 - beta2Pow)
			xi := x[i]
			// Forward.
			for h := 0; h < hidden; h++ {
				z := linalg.Dot(m.w1[h], xi) + m.b1[h]
				z1[h] = z
				switch actKind {
				case actTanh:
					a1[h] = math.Tanh(z)
				case actLogistic:
					a1[h] = linalg.Sigmoid(z)
				default:
					if z > 0 {
						a1[h] = z
					} else {
						a1[h] = 0
					}
				}
			}
			z2 := linalg.Dot(m.w2, a1) + m.b2
			p := linalg.Sigmoid(z2)
			// Backward: dLoss/dz2 = p - y.
			g2 := p - float64(y[i])
			for h := 0; h < hidden; h++ {
				gw2 := g2*a1[h] + alpha*m.w2[h]/nf
				var grad float64
				switch actKind {
				case actTanh:
					grad = 1 - a1[h]*a1[h]
				case actLogistic:
					grad = a1[h] * (1 - a1[h])
				default:
					if z1[h] > 0 {
						grad = 1
					}
				}
				gh := g2 * m.w2[h] * grad
				// Reslicing to len(xi) (== d, by validateFit) lets the
				// compiler drop the bounds checks in the weight loops.
				row := m.w1[h][:len(xi)]
				if adam {
					st2 := &aw2[h]
					st2.m = beta1*st2.m + (1-beta1)*gw2
					st2.v = beta2*st2.v + (1-beta2)*gw2*gw2
					m.w2[h] -= lr * (st2.m * corr1) / (math.Sqrt(st2.v*corr2) + eps)
					ast := aw1[h][:len(xi)]
					for j, xj := range xi {
						gw1 := gh*xj + alpha*row[j]/nf
						st := &ast[j]
						st.m = beta1*st.m + (1-beta1)*gw1
						st.v = beta2*st.v + (1-beta2)*gw1*gw1
						mhat := st.m * corr1
						vhat := st.v * corr2
						row[j] -= lr * mhat / (math.Sqrt(vhat) + eps)
					}
					stb := &ab1[h]
					stb.m = beta1*stb.m + (1-beta1)*gh
					stb.v = beta2*stb.v + (1-beta2)*gh*gh
					m.b1[h] -= lr * (stb.m * corr1) / (math.Sqrt(stb.v*corr2) + eps)
				} else {
					m.w2[h] -= lr * gw2
					for j, xj := range xi {
						gw1 := gh*xj + alpha*row[j]/nf
						row[j] -= lr * gw1
					}
					m.b1[h] -= lr * gh
				}
			}
			if adam {
				ab2.m = beta1*ab2.m + (1-beta1)*g2
				ab2.v = beta2*ab2.v + (1-beta2)*g2*g2
				m.b2 -= lr * (ab2.m * corr1) / (math.Sqrt(ab2.v*corr2) + eps)
			} else {
				m.b2 -= lr * g2
			}
		}
	}
	return nil
}

// mlpRowBlock is how many request rows stream through the batch forward
// pass at a time: one X tile plus one pre-activation tile stay resident in
// L2 and are reused for every block, so a request of any size costs two
// small fixed buffers instead of a full-batch copy.
const mlpRowBlock = 128

// Predict implements Classifier. The forward pass is batched: request rows
// stream in blocks through one contiguous row-major tile, the hidden layer
// is an X·W₁ᵀ GEMM per tile (the weights wrap their existing backing array,
// no copy), followed by an element-wise bias+activation pass with the
// activation kind resolved once, and a fused DotFrom per row for the output
// unit. Every accumulation keeps the per-sample scalar order — ascending
// feature index for the dot, bias seeded first for the output layer — so
// predictions are bit-identical to the historical row-at-a-time loop.
func (m *MLP) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	hidden := len(m.w1)
	if len(x) == 0 {
		return out
	}
	if hidden == 0 {
		// Unfitted: the scalar loop reduced to sign(b2) for every row.
		if m.b2 > 0 {
			for i := range out {
				out[i] = 1
			}
		}
		return out
	}
	actKind := actKindOf(m.params.String("activation", "relu"))
	wm := m.weightMatrix()
	d := wm.Cols
	blk := min(mlpRowBlock, len(x))
	xb := linalg.NewMatrix(blk, d)
	zb := linalg.NewMatrix(blk, hidden)
	for lo := 0; lo < len(x); lo += blk {
		hi := min(lo+blk, len(x))
		rows := hi - lo
		xt := &linalg.Matrix{Rows: rows, Cols: d, Data: xb.Data[:rows*d]}
		for i := lo; i < hi; i++ {
			copy(xt.Data[(i-lo)*d:(i-lo+1)*d], x[i][:d])
		}
		zt := linalg.MulTransBInto(&linalg.Matrix{Rows: rows, Cols: hidden, Data: zb.Data[:rows*hidden]}, xt, wm)
		for r := 0; r < rows; r++ {
			zi := zt.Row(r)
			b1 := m.b1[:len(zi)]
			for h, zh := range zi {
				zv := zh + b1[h]
				switch actKind {
				case actTanh:
					zi[h] = math.Tanh(zv)
				case actLogistic:
					zi[h] = linalg.Sigmoid(zv)
				default:
					if zv > 0 {
						zi[h] = zv
					} else {
						zi[h] = 0
					}
				}
			}
			if linalg.DotFrom(m.b2, m.w2, zi) > 0 {
				out[lo+r] = 1
			}
		}
	}
	return out
}

// weightMatrix wraps w1 as a row-major matrix. The flat backing from Fit is
// aliased (zero-copy); a model assembled row-by-row (e.g. in tests) falls
// back to a copy.
func (m *MLP) weightMatrix() *linalg.Matrix {
	hidden := len(m.w1)
	d := len(m.w1[0])
	if len(m.w1flat) == hidden*d {
		return &linalg.Matrix{Rows: hidden, Cols: d, Data: m.w1flat}
	}
	return linalg.FromRows(m.w1)
}
