package classifiers

import "mlaasbench/internal/rng"

func init() {
	register(Info{
		Name:   "bagging",
		Label:  "BAG",
		Linear: false,
		Params: []ParamSpec{
			{Name: "n_estimators", Kind: Numeric, Default: 10, Min: 1, Max: 100, IsInt: true},
			{Name: "max_features", Kind: Categorical, Options: []any{"all", "sqrt", "log2"}},
			{Name: "node_threshold", Kind: Numeric, Default: 2, Min: 2, Max: 1000, IsInt: true},
		},
	}, func(p Params) Classifier { return &Bagging{params: p} })

	register(Info{
		Name:   "randomforest",
		Label:  "RF",
		Linear: false,
		Params: []ParamSpec{
			{Name: "n_estimators", Kind: Numeric, Default: 10, Min: 1, Max: 100, IsInt: true},
			{Name: "max_features", Kind: Categorical, Options: []any{"sqrt", "log2", "all"}},
			{Name: "max_depth", Kind: Numeric, Default: 16, Min: 1, Max: 64, IsInt: true},
			{Name: "random_splits", Kind: Numeric, Default: 0, Min: 0, Max: 128, IsInt: true},
			{Name: "min_samples_leaf", Kind: Numeric, Default: 1, Min: 1, Max: 100, IsInt: true},
			{Name: "resampling", Kind: Categorical, Options: []any{"bagging", "replicate"}},
		},
	}, func(p Params) Classifier { return &RandomForest{params: p} })
}

// Bagging is bootstrap aggregation of full decision trees with majority
// vote (Breiman 1996). BigML's Bagging exposes node threshold, number of
// models and ordering; here ordering is subsumed by the deterministic RNG.
type Bagging struct {
	params Params
	trees  []*treeNode
}

// Name implements Classifier.
func (*Bagging) Name() string { return "bagging" }

// Fit implements Classifier.
func (b *Bagging) Fit(x [][]float64, y []int, r *rng.RNG) error {
	if _, _, err := validateFit(x, y); err != nil {
		return err
	}
	n := len(x)
	target := labelsToFloats(y)
	count := b.params.Int("n_estimators", 10)
	if count < 1 {
		count = 1
	}
	cfg := treeConfig{
		maxDepth:      0,
		minLeaf:       1,
		maxFeatures:   b.params.String("max_features", "all"),
		criterion:     "gini",
		nodeThreshold: b.params.Int("node_threshold", 2),
	}
	pre := presortFeatures(x)
	mem := &treeMem{}
	b.trees = make([]*treeNode, count)
	for t := 0; t < count; t++ {
		idx := bootstrapIndices(n, r)
		b.trees[t] = growTreePresorted(pre, mem, x, target, idx, cfg, r, 0)
	}
	return nil
}

// Predict implements Classifier.
func (b *Bagging) Predict(x [][]float64) []int {
	return votePredict(b.trees, x)
}

// RandomForest is bagged trees with per-split random feature subsets
// (Breiman 2001). Microsoft's variant also exposes the resampling method,
// the number of random splits evaluated per node, and the minimum samples
// per leaf — all mapped here.
type RandomForest struct {
	params Params
	trees  []*treeNode
}

// Name implements Classifier.
func (*RandomForest) Name() string { return "randomforest" }

// Fit implements Classifier.
func (f *RandomForest) Fit(x [][]float64, y []int, r *rng.RNG) error {
	if _, _, err := validateFit(x, y); err != nil {
		return err
	}
	n := len(x)
	target := labelsToFloats(y)
	count := f.params.Int("n_estimators", 10)
	if count < 1 {
		count = 1
	}
	cfg := treeConfig{
		maxDepth:     f.params.Int("max_depth", 16),
		minLeaf:      f.params.Int("min_samples_leaf", 1),
		maxFeatures:  f.params.String("max_features", "sqrt"),
		criterion:    "gini",
		randomSplits: f.params.Int("random_splits", 0),
	}
	if cfg.minLeaf < 1 {
		cfg.minLeaf = 1
	}
	replicate := f.params.String("resampling", "bagging") == "replicate"
	pre := presortFeatures(x)
	mem := &treeMem{}
	f.trees = make([]*treeNode, count)
	for t := 0; t < count; t++ {
		var idx []int
		if replicate {
			idx = allIndices(n) // every tree sees the full data; diversity comes from feature sampling
		} else {
			idx = bootstrapIndices(n, r)
		}
		f.trees[t] = growTreePresorted(pre, mem, x, target, idx, cfg, r, 0)
	}
	return nil
}

// Predict implements Classifier.
func (f *RandomForest) Predict(x [][]float64) []int {
	return votePredict(f.trees, x)
}

// votePredict majority-votes an ensemble of probability trees.
func votePredict(trees []*treeNode, x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		sum := 0.0
		for _, t := range trees {
			sum += t.predict(row)
		}
		if sum > float64(len(trees))/2 {
			out[i] = 1
		}
	}
	return out
}
