package classifiers

import (
	"math"
	"testing"

	"mlaasbench/internal/rng"
)

// Per-classifier behavioral tests: each classifier's defining property,
// beyond the shared learn-the-concept checks in classifiers_test.go.

func TestLogRegRecoversDirection(t *testing.T) {
	// Concept: y = 1 iff 3·x0 - 2·x1 > 0. Learned weights must align.
	r := rng.New(1)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		x = append(x, []float64{a, b})
		if 3*a-2*b > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	for _, solver := range []string{"sgd", "newton"} {
		clf := &LogisticRegression{params: Params{"solver": solver, "max_iter": 200}}
		if err := clf.Fit(x, y, rng.New(2)); err != nil {
			t.Fatal(err)
		}
		w, _ := clf.Weights()
		// Normalize and compare to (3,-2)/√13.
		norm := math.Hypot(w[0], w[1])
		if norm == 0 {
			t.Fatalf("%s: zero weights", solver)
		}
		cos := (w[0]*3 + w[1]*-2) / (norm * math.Sqrt(13))
		if cos < 0.97 {
			t.Errorf("%s: weight direction cosine %.3f", solver, cos)
		}
	}
}

func TestLogRegL1SparserThanL2(t *testing.T) {
	// With many noise features and strong regularization, L1 should zero
	// out (or shrink) more mass than L2.
	r := rng.New(3)
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		row := make([]float64, 10)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x = append(x, row)
		if row[0] > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	mass := func(penalty string) float64 {
		clf := &LogisticRegression{params: Params{"penalty": penalty, "C": 0.05, "max_iter": 100}}
		if err := clf.Fit(x, y, rng.New(4)); err != nil {
			t.Fatal(err)
		}
		w, _ := clf.Weights()
		noise := 0.0
		for _, v := range w[1:] {
			noise += math.Abs(v)
		}
		return noise
	}
	if l1, l2 := mass("l1"), mass("l2"); l1 > l2 {
		t.Errorf("L1 noise-weight mass %.4f should be ≤ L2 %.4f", l1, l2)
	}
}

func TestLogRegFitInterceptFalse(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{0, 0, 1, 1}
	for _, solver := range []string{"sgd", "newton"} {
		clf := &LogisticRegression{params: Params{"fit_intercept": "false", "solver": solver}}
		if err := clf.Fit(x, y, rng.New(5)); err != nil {
			t.Fatal(err)
		}
		if _, b := clf.Weights(); b != 0 {
			t.Errorf("%s: intercept %v with fit_intercept=false", solver, b)
		}
	}
}

func TestNaiveBayesLearnsClassStatistics(t *testing.T) {
	// Class 0 ~ N(0,1), class 1 ~ N(5,1): a point at 4.9 must be class 1,
	// at 0.1 class 0.
	r := rng.New(6)
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		cls := i % 2
		x = append(x, []float64{r.Normal(float64(cls)*5, 1)})
		y = append(y, cls)
	}
	nb := &NaiveBayes{params: Params{}}
	if err := nb.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	pred := nb.Predict([][]float64{{0.1}, {4.9}})
	if pred[0] != 0 || pred[1] != 1 {
		t.Fatalf("NB predictions %v", pred)
	}
}

func TestNaiveBayesUniformPriorShiftsImbalanced(t *testing.T) {
	// 90/10 imbalance: at the midpoint, empirical prior votes majority,
	// uniform prior is indifferent to class frequencies.
	r := rng.New(7)
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		cls := 0
		if i%10 == 0 {
			cls = 1
		}
		x = append(x, []float64{r.Normal(float64(cls)*2, 1)})
		y = append(y, cls)
	}
	predAt := func(prior string, v float64) int {
		nb := &NaiveBayes{params: Params{"prior": prior}}
		if err := nb.Fit(x, y, nil); err != nil {
			t.Fatal(err)
		}
		return nb.Predict([][]float64{{v}})[0]
	}
	// Exactly at the midpoint the empirical prior must pull toward the
	// majority class relative to the uniform prior.
	if predAt("empirical", 1.0) == 1 && predAt("uniform", 1.0) == 0 {
		t.Fatal("empirical prior favored minority class more than uniform")
	}
}

func TestKNNOneNeighborMemorizes(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	y := []int{0, 1, 0, 1}
	knn := &KNN{params: Params{"n_neighbors": 1}}
	if err := knn.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	pred := knn.Predict(x)
	for i := range y {
		if pred[i] != y[i] {
			t.Fatalf("1-NN must memorize training data: %v vs %v", pred, y)
		}
	}
}

func TestKNNDistanceWeighting(t *testing.T) {
	// Query at 0.1: neighbors are 0 (class 1) and 1,2 (class 0). With k=3
	// uniform, class 0 wins 2:1; distance weighting makes the adjacent
	// class-1 point dominate.
	x := [][]float64{{0}, {1}, {2}}
	y := []int{1, 0, 0}
	uniform := &KNN{params: Params{"n_neighbors": 3, "weights": "uniform"}}
	_ = uniform.Fit(x, y, nil)
	weighted := &KNN{params: Params{"n_neighbors": 3, "weights": "distance"}}
	_ = weighted.Fit(x, y, nil)
	q := [][]float64{{0.1}}
	if uniform.Predict(q)[0] != 0 {
		t.Fatal("uniform 3-NN should vote class 0")
	}
	if weighted.Predict(q)[0] != 1 {
		t.Fatal("distance-weighted 3-NN should vote class 1")
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	r := rng.New(8)
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		x = append(x, []float64{r.NormFloat64(), r.NormFloat64()})
		y = append(y, r.Intn(2))
	}
	for _, depth := range []int{1, 2, 4} {
		dt := &DecisionTree{params: Params{"max_depth": depth}}
		if err := dt.Fit(x, y, rng.New(9)); err != nil {
			t.Fatal(err)
		}
		if got := dt.Depth(); got > depth {
			t.Fatalf("max_depth=%d produced depth %d", depth, got)
		}
	}
}

func TestDecisionTreeNodeThresholdStopsEarly(t *testing.T) {
	r := rng.New(10)
	var x [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		x = append(x, []float64{r.NormFloat64()})
		y = append(y, r.Intn(2))
	}
	big := &DecisionTree{params: Params{"node_threshold": 90, "max_depth": 30}}
	_ = big.Fit(x, y, rng.New(11))
	small := &DecisionTree{params: Params{"node_threshold": 2, "max_depth": 30}}
	_ = small.Fit(x, y, rng.New(11))
	if big.Depth() >= small.Depth() {
		t.Fatalf("node_threshold=90 depth %d should be shallower than threshold=2 depth %d", big.Depth(), small.Depth())
	}
}

func TestBoostingImprovesWithRounds(t *testing.T) {
	xTr, yTr := makeCircles(300, 12)
	xTe, yTe := makeCircles(150, 13)
	accAt := func(rounds int) float64 {
		bst := &BoostedTrees{params: Params{"n_estimators": rounds, "max_leaves": 4}}
		if err := bst.Fit(xTr, yTr, rng.New(14)); err != nil {
			t.Fatal(err)
		}
		return accuracy(yTe, bst.Predict(xTe))
	}
	if a1, a50 := accAt(1), accAt(50); a50 <= a1 {
		t.Fatalf("boosting with 50 rounds (%.3f) should beat 1 round (%.3f)", a50, a1)
	}
}

func TestRandomForestBeatsSingleTreeOnNoise(t *testing.T) {
	// With label noise, the ensemble should generalize at least as well as
	// a single full tree.
	r := rng.New(15)
	makeNoisy := func(n int, seed uint64) ([][]float64, []int) {
		rr := rng.New(seed)
		var x [][]float64
		var y []int
		for i := 0; i < n; i++ {
			a, b := rr.NormFloat64(), rr.NormFloat64()
			cls := 0
			if a+b > 0 {
				cls = 1
			}
			if rr.Bernoulli(0.15) {
				cls = 1 - cls
			}
			x = append(x, []float64{a, b})
			y = append(y, cls)
		}
		return x, y
	}
	xTr, yTr := makeNoisy(300, 16)
	xTe, yTe := makeNoisy(200, 17)
	_ = r
	tree := &DecisionTree{params: Params{"max_depth": 30}}
	_ = tree.Fit(xTr, yTr, rng.New(18))
	forest := &RandomForest{params: Params{"n_estimators": 30}}
	_ = forest.Fit(xTr, yTr, rng.New(18))
	accTree := accuracy(yTe, tree.Predict(xTe))
	accForest := accuracy(yTe, forest.Predict(xTe))
	if accForest < accTree-0.02 {
		t.Fatalf("forest %.3f should not trail single tree %.3f", accForest, accTree)
	}
}

func TestBaggingUsesBootstrapDiversity(t *testing.T) {
	xTr, yTr := makeCircles(200, 19)
	bag := &Bagging{params: Params{"n_estimators": 10}}
	if err := bag.Fit(xTr, yTr, rng.New(20)); err != nil {
		t.Fatal(err)
	}
	if len(bag.trees) != 10 {
		t.Fatalf("%d trees", len(bag.trees))
	}
	// Bootstrap trees must not all be identical: compare predictions of
	// the first two trees across training points.
	diff := 0
	for _, row := range xTr {
		a := bag.trees[0].predict(row)
		b := bag.trees[1].predict(row)
		if (a > 0.5) != (b > 0.5) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("bootstrap trees are identical — no resampling diversity")
	}
}

func TestMLPSolversAndActivationsLearn(t *testing.T) {
	xTr, yTr := makeXOR(300, 21)
	xTe, yTe := makeXOR(150, 22)
	for _, solver := range []string{"adam", "sgd"} {
		for _, act := range []string{"relu", "tanh", "logistic"} {
			mlp := &MLP{params: Params{"solver": solver, "activation": act, "max_iter": 80, "hidden": 16}}
			if err := mlp.Fit(xTr, yTr, rng.New(23)); err != nil {
				t.Fatal(err)
			}
			if acc := accuracy(yTe, mlp.Predict(xTe)); acc < 0.8 {
				t.Errorf("mlp %s/%s: accuracy %.3f on XOR", solver, act, acc)
			}
		}
	}
}

func TestAveragedPerceptronMoreStableThanFinal(t *testing.T) {
	// On noisy data the averaged weights should fluctuate less across
	// reruns than a vanilla perceptron's final weights would; we check the
	// cheap proxy that two different shuffles give similar predictions.
	r := rng.New(24)
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		cls := 0
		if a > 0 {
			cls = 1
		}
		if r.Bernoulli(0.1) {
			cls = 1 - cls
		}
		x = append(x, []float64{a, b})
		y = append(y, cls)
	}
	p1 := &AveragedPerceptron{params: Params{}}
	_ = p1.Fit(x, y, rng.New(25))
	p2 := &AveragedPerceptron{params: Params{}}
	_ = p2.Fit(x, y, rng.New(26))
	agree := 0
	probe := [][]float64{}
	for i := 0; i < 100; i++ {
		probe = append(probe, []float64{r.NormFloat64(), r.NormFloat64()})
	}
	q1, q2 := p1.Predict(probe), p2.Predict(probe)
	for i := range q1 {
		if q1[i] == q2[i] {
			agree++
		}
	}
	if agree < 90 {
		t.Fatalf("averaged perceptrons from different shuffles agree on only %d/100 points", agree)
	}
}

func TestBPMCommitteeAverages(t *testing.T) {
	xTr, yTr := makeLinear(200, 27)
	xTe, yTe := makeLinear(100, 28)
	bpm := &BayesPointMachine{params: Params{"n_iter": 20}}
	if err := bpm.Fit(xTr, yTr, rng.New(29)); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(yTe, bpm.Predict(xTe)); acc < 0.9 {
		t.Fatalf("BPM accuracy %.3f on separable data", acc)
	}
}

func TestJungleWidthBoundRespected(t *testing.T) {
	xTr, yTr := makeCircles(300, 30)
	dj := &DecisionJungle{params: Params{"n_dags": 4, "max_depth": 10, "max_width": 4}}
	if err := dj.Fit(xTr, yTr, rng.New(31)); err != nil {
		t.Fatal(err)
	}
	for _, dag := range dj.dags {
		for li, level := range dag.levels {
			if li == 0 {
				continue
			}
			if len(level) > 4 {
				t.Fatalf("level %d has %d nodes, width cap 4", li, len(level))
			}
		}
	}
}

func TestJungleChildPointersValid(t *testing.T) {
	xTr, yTr := makeXOR(250, 32)
	dj := &DecisionJungle{params: Params{"n_dags": 6, "max_depth": 8, "max_width": 6}}
	if err := dj.Fit(xTr, yTr, rng.New(33)); err != nil {
		t.Fatal(err)
	}
	for _, dag := range dj.dags {
		for li, level := range dag.levels {
			for _, node := range level {
				if node.feature < 0 {
					continue
				}
				if li+1 >= len(dag.levels) {
					t.Fatal("split node on the terminal level")
				}
				next := len(dag.levels[li+1])
				if node.left < 0 || node.left >= next || node.right < 0 || node.right >= next {
					t.Fatalf("level %d: child pointers %d/%d outside next level of %d", li, node.left, node.right, next)
				}
			}
		}
	}
}

func TestSVMLossVariantsBothLearn(t *testing.T) {
	xTr, yTr := makeLinear(200, 34)
	xTe, yTe := makeLinear(100, 35)
	for _, loss := range []string{"hinge", "squared_hinge"} {
		svm := &LinearSVM{params: Params{"loss": loss}}
		if err := svm.Fit(xTr, yTr, rng.New(36)); err != nil {
			t.Fatal(err)
		}
		if acc := accuracy(yTe, svm.Predict(xTe)); acc < 0.9 {
			t.Errorf("svm %s: accuracy %.3f", loss, acc)
		}
	}
}

func TestLDASolversAgree(t *testing.T) {
	xTr, yTr := makeLinear(300, 37)
	xTe, _ := makeLinear(100, 38)
	lsqr := &LDA{params: Params{"solver": "lsqr"}}
	_ = lsqr.Fit(xTr, yTr, nil)
	eigen := &LDA{params: Params{"solver": "eigen"}}
	_ = eigen.Fit(xTr, yTr, nil)
	p1, p2 := lsqr.Predict(xTe), eigen.Predict(xTe)
	agree := 0
	for i := range p1 {
		if p1[i] == p2[i] {
			agree++
		}
	}
	if agree < 95 {
		t.Fatalf("LDA solvers agree on only %d/100 points", agree)
	}
}

func TestLDAShrinkageHandlesSingularCovariance(t *testing.T) {
	// Duplicate feature → singular pooled covariance; shrinkage must cope.
	r := rng.New(39)
	var x [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		v := r.NormFloat64()
		cls := 0
		if v > 0 {
			cls = 1
		}
		x = append(x, []float64{v, v, r.NormFloat64()})
		y = append(y, cls)
	}
	lda := &LDA{params: Params{"shrinkage": "auto"}}
	if err := lda.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	acc := accuracy(y, lda.Predict(x))
	if acc < 0.9 {
		t.Fatalf("shrinkage LDA accuracy %.3f on separable data with duplicate feature", acc)
	}
}

func TestDecisionTreeScaleInvariant(t *testing.T) {
	// CART splits depend only on feature order, so predictions must be
	// invariant under positive rescaling of a feature (applied to both
	// train and test).
	xTr, yTr := makeCircles(200, 50)
	xTe, _ := makeCircles(80, 51)
	scale := func(rows [][]float64, f float64) [][]float64 {
		out := make([][]float64, len(rows))
		for i, r := range rows {
			out[i] = []float64{r[0] * f, r[1]}
		}
		return out
	}
	a := &DecisionTree{params: Params{}}
	if err := a.Fit(xTr, yTr, rng.New(52)); err != nil {
		t.Fatal(err)
	}
	b := &DecisionTree{params: Params{}}
	if err := b.Fit(scale(xTr, 1000), yTr, rng.New(52)); err != nil {
		t.Fatal(err)
	}
	pa := a.Predict(xTe)
	pb := b.Predict(scale(xTe, 1000))
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("tree predictions changed under feature rescaling at %d", i)
		}
	}
}

func TestKNNPermutationInvariant(t *testing.T) {
	xTr, yTr := makeCircles(150, 53)
	xTe, _ := makeCircles(60, 54)
	a := &KNN{params: Params{"n_neighbors": 5}}
	_ = a.Fit(xTr, yTr, nil)
	// Permute the training order.
	perm := rng.New(55).Perm(len(xTr))
	px := make([][]float64, len(xTr))
	py := make([]int, len(yTr))
	for i, j := range perm {
		px[i] = xTr[j]
		py[i] = yTr[j]
	}
	b := &KNN{params: Params{"n_neighbors": 5}}
	_ = b.Fit(px, py, nil)
	pa, pb := a.Predict(xTe), b.Predict(xTe)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("kNN predictions depend on training order at %d", i)
		}
	}
}

func TestTreeEngineBestSplitExact(t *testing.T) {
	// One feature with a perfect split at 2.5.
	x := [][]float64{{1}, {2}, {3}, {4}}
	target := []float64{0, 0, 1, 1}
	thr, _, ok := bestSplit(x, target, []int{0, 1, 2, 3}, 0, treeConfig{criterion: "gini"}, rng.New(1))
	if !ok {
		t.Fatal("no split found")
	}
	if thr != 2.5 {
		t.Fatalf("threshold %v, want 2.5", thr)
	}
}

func TestTreeEngineConstantFeature(t *testing.T) {
	x := [][]float64{{5}, {5}, {5}}
	target := []float64{0, 1, 0}
	if _, _, ok := bestSplit(x, target, []int{0, 1, 2}, 0, treeConfig{criterion: "gini"}, rng.New(1)); ok {
		t.Fatal("constant feature must not split")
	}
}

func TestTreeEngineMSECriterion(t *testing.T) {
	// Regression split: targets 0,0 vs 10,10 at threshold 2.5.
	x := [][]float64{{1}, {2}, {3}, {4}}
	target := []float64{0, 0, 10, 10}
	thr, score, ok := bestSplit(x, target, []int{0, 1, 2, 3}, 0, treeConfig{criterion: "mse"}, rng.New(1))
	if !ok || thr != 2.5 {
		t.Fatalf("mse split thr=%v ok=%v", thr, ok)
	}
	if score != 0 {
		t.Fatalf("perfect split should have zero weighted variance, got %v", score)
	}
}

func TestTreeEngineRandomSplitsFindSignal(t *testing.T) {
	r := rng.New(40)
	var x [][]float64
	target := make([]float64, 200)
	idx := make([]int, 200)
	for i := 0; i < 200; i++ {
		v := r.Uniform(0, 10)
		x = append(x, []float64{v})
		if v > 5 {
			target[i] = 1
		}
		idx[i] = i
	}
	thr, _, ok := bestSplit(x, target, idx, 0, treeConfig{criterion: "gini", randomSplits: 32}, rng.New(41))
	if !ok {
		t.Fatal("no random split found")
	}
	if thr < 4 || thr > 6 {
		t.Fatalf("random-split threshold %v too far from 5", thr)
	}
}

func TestGrowTreePureLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	target := []float64{1, 1, 1}
	node := growTree(x, target, []int{0, 1, 2}, treeConfig{criterion: "gini", minLeaf: 1}, rng.New(1), 0)
	if node.feature != -1 {
		t.Fatal("pure node must be a leaf")
	}
	if node.value != 1 {
		t.Fatalf("leaf value %v", node.value)
	}
}
