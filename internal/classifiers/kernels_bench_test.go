package classifiers

import (
	"testing"

	"mlaasbench/internal/rng"
)

// The forward-pass benchmarks behind BENCH_PR5.json. They use only the
// public Fit/Predict surface so the same file runs unmodified against trees
// that predate the batch-kernel layer — that is how the interleaved A/B
// comparison is produced.

func benchData(n, d int) ([][]float64, []int) {
	r := rng.New(1234)
	x := make([][]float64, n)
	y := make([]int, n)
	backing := make([]float64, n*d)
	for i := range x {
		row := backing[i*d : (i+1)*d]
		for j := range row {
			row[j] = r.NormFloat64()
		}
		x[i] = row
		if r.Float64() > 0.5 {
			y[i] = 1
		}
	}
	return x, y
}

// BenchmarkMLPForwardBatch measures a 512-row batched predict against a
// fitted 32-unit MLP — the serving forward pass after PR 3's fit-once split.
func BenchmarkMLPForwardBatch(b *testing.B) {
	x, y := benchData(512, 24)
	m := &MLP{params: Params{"hidden": 32, "max_iter": 4}}
	if err := m.Fit(x, y, rng.New(7)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}

// BenchmarkKNNPredictBatch measures a 256-query batched predict against a
// 2048-row training set under the default Euclidean metric.
func BenchmarkKNNPredictBatch(b *testing.B) {
	x, y := benchData(2048, 24)
	k := &KNN{params: Params{"n_neighbors": 5}}
	if err := k.Fit(x, y, rng.New(7)); err != nil {
		b.Fatal(err)
	}
	queries, _ := benchData(256, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Predict(queries)
	}
}
