package classifiers

import (
	"testing"

	"mlaasbench/internal/metrics"
	"mlaasbench/internal/rng"
)

func TestEveryClassifierScores(t *testing.T) {
	xTr, yTr := makeLinear(200, 60)
	xTe, yTe := makeLinear(100, 61)
	for _, name := range Names() {
		clf, err := New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := clf.Fit(xTr, yTr, rng.New(62)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scorer, ok := clf.(Scorer)
		if !ok {
			t.Fatalf("%s does not implement Scorer", name)
		}
		scores := scorer.PredictScore(xTe)
		if len(scores) != len(xTe) {
			t.Fatalf("%s: %d scores for %d rows", name, len(scores), len(xTe))
		}
		// Scores must rank well on separable data.
		if auc := metrics.AUC(yTe, scores); auc < 0.85 {
			t.Errorf("%s: AUC %.3f on separable data", name, auc)
		}
	}
}

func TestScoresConsistentWithPredictions(t *testing.T) {
	// For margin-style scorers, sign(score) should broadly agree with the
	// hard prediction. We check agreement ≥ 90% per classifier (exact
	// thresholds differ for probability-style scores centered at 0.5, so
	// compare ordering instead: mean score of predicted-1 > predicted-0).
	xTr, yTr := makeCircles(250, 63)
	xTe, _ := makeCircles(120, 64)
	for _, name := range Names() {
		clf, _ := New(name, nil)
		if err := clf.Fit(xTr, yTr, rng.New(65)); err != nil {
			t.Fatal(err)
		}
		pred := clf.Predict(xTe)
		scores := clf.(Scorer).PredictScore(xTe)
		var sum1, sum0, n1, n0 float64
		for i := range pred {
			if pred[i] == 1 {
				sum1 += scores[i]
				n1++
			} else {
				sum0 += scores[i]
				n0++
			}
		}
		if n1 == 0 || n0 == 0 {
			continue // degenerate prediction on this classifier; ranking untestable
		}
		if sum1/n1 <= sum0/n0 {
			t.Errorf("%s: mean score of predicted-positive (%.3f) not above predicted-negative (%.3f)",
				name, sum1/n1, sum0/n0)
		}
	}
}
