package classifiers

import (
	"math"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "lda",
		Label:  "LDA",
		Linear: true,
		Params: []ParamSpec{
			{Name: "solver", Kind: Categorical, Options: []any{"lsqr", "eigen"}},
			{Name: "shrinkage", Kind: Categorical, Options: []any{"none", "auto"}},
		},
	}, func(p Params) Classifier { return &LDA{params: p} })
}

// LDA is linear discriminant analysis with a shared (pooled) covariance:
// the Bayes-optimal linear rule under homoscedastic Gaussian classes.
// The "lsqr" solver solves Σw = (μ₁-μ₀) directly; "eigen" goes through the
// eigendecomposition of the pooled covariance (useful with shrinkage).
// Shrinkage "auto" blends the covariance toward a scaled identity, the
// Ledoit-Wolf-style regularization scikit-learn offers.
type LDA struct {
	params Params
	w      []float64
	bias   float64
}

// Name implements Classifier.
func (*LDA) Name() string { return "lda" }

// Fit implements Classifier.
func (l *LDA) Fit(x [][]float64, y []int, _ *rng.RNG) error {
	n, d, err := validateFit(x, y)
	if err != nil {
		return err
	}
	var rows [2][][]float64
	for i, row := range x {
		rows[y[i]] = append(rows[y[i]], row)
	}
	if len(rows[0]) == 0 || len(rows[1]) == 0 {
		// Single-class training: constant prediction via bias sign.
		l.w = make([]float64, d)
		if majorityLabel(y) == 1 {
			l.bias = 1
		} else {
			l.bias = -1
		}
		return nil
	}
	m0 := linalg.ColumnMeans(linalg.FromRows(rows[0]))
	m1 := linalg.ColumnMeans(linalg.FromRows(rows[1]))
	c0 := linalg.Covariance(linalg.FromRows(rows[0]), m0)
	c1 := linalg.Covariance(linalg.FromRows(rows[1]), m1)
	pooled := linalg.NewMatrix(d, d)
	w0 := float64(len(rows[0])) / float64(n)
	w1 := float64(len(rows[1])) / float64(n)
	for i := range pooled.Data {
		pooled.Data[i] = w0*c0.Data[i] + w1*c1.Data[i]
	}

	if l.params.String("shrinkage", "none") == "auto" {
		// Shrink toward tr(Σ)/d · I with a fixed blend.
		trace := 0.0
		for i := 0; i < d; i++ {
			trace += pooled.At(i, i)
		}
		mu := trace / float64(d)
		const alpha = 0.3
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				v := (1 - alpha) * pooled.At(i, j)
				if i == j {
					v += alpha * mu
				}
				pooled.Set(i, j, v)
			}
		}
	}

	diff := linalg.Sub(m1, m0)
	switch l.params.String("solver", "lsqr") {
	case "eigen":
		l.w = l.solveEigen(pooled, diff)
	default:
		l.w = linalg.SolveRidge(pooled, diff, 1e-9)
	}
	if linalg.Norm2(l.w) == 0 {
		l.w[0] = 1
	}
	// Threshold at the midpoint of projected class means, with the
	// log-prior offset.
	mid := (linalg.Dot(l.w, m0) + linalg.Dot(l.w, m1)) / 2
	prior := math.Log(float64(len(rows[1])) / float64(len(rows[0])))
	l.bias = -mid + prior
	return nil
}

// solveEigen inverts the pooled covariance through its eigendecomposition,
// flooring tiny eigenvalues for stability.
func (l *LDA) solveEigen(sigma *linalg.Matrix, diff []float64) []float64 {
	vals, vecs, err := linalg.JacobiEigen(sigma)
	if err != nil {
		return linalg.SolveRidge(sigma, diff, 1e-9)
	}
	d := len(diff)
	w := make([]float64, d)
	floor := 1e-9
	if len(vals) > 0 && vals[0] > 0 {
		floor = vals[0] * 1e-9
	}
	vk := make([]float64, vecs.Rows) // one column buffer reused across k
	for k := 0; k < d; k++ {
		ev := vals[k]
		if ev < floor {
			ev = floor
		}
		linalg.ColInto(vk, vecs, k)
		coef := linalg.Dot(vk, diff) / ev
		linalg.AXPY(coef, vk, w)
	}
	return w
}

// Predict implements Classifier. The fused DotBias kernel rounds exactly
// like Dot(w, row) + bias, so predictions are unchanged.
func (l *LDA) Predict(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		if linalg.DotBias(l.bias, l.w, row) > 0 {
			out[i] = 1
		}
	}
	return out
}
