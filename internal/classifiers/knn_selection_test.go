package classifiers

import (
	"sort"
	"testing"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

// referenceKNNPredict is the straightforward full-sort implementation the
// heap-based Predict replaced, with the same (dist, index) tie order.
func referenceKNNPredict(k *KNN, x [][]float64) []int {
	kk := k.params.Int("n_neighbors", 5)
	if kk > len(k.x) {
		kk = len(k.x)
	}
	if kk < 1 {
		kk = 1
	}
	p := k.params.Float("p", 2)
	if p < 1 {
		p = 1
	}
	distWeighted := k.params.String("weights", "uniform") == "distance"
	out := make([]int, len(x))
	type nd struct {
		dist float64
		idx  int
	}
	for qi, q := range x {
		nds := make([]nd, len(k.x))
		for i, row := range k.x {
			var dist float64
			if p == 2 {
				dist = linalg.SquaredEuclidean(row, q)
			} else {
				dist = linalg.MinkowskiDistance(row, q, p)
			}
			nds[i] = nd{dist: dist, idx: i}
		}
		sort.Slice(nds, func(a, b int) bool {
			if nds[a].dist != nds[b].dist {
				return nds[a].dist < nds[b].dist
			}
			return nds[a].idx < nds[b].idx
		})
		var votes [2]float64
		for i := 0; i < kk; i++ {
			wgt := 1.0
			if distWeighted {
				wgt = 1 / (nds[i].dist + 1e-9)
			}
			votes[k.y[nds[i].idx]] += wgt
		}
		if votes[1] > votes[0] {
			out[qi] = 1
		}
	}
	return out
}

// The bounded k-selection must agree with a full sort on every query —
// including duplicate points, which force exact distance ties.
func TestKNNSelectionMatchesFullSort(t *testing.T) {
	r := rng.New(11)
	for _, tc := range []struct {
		name    string
		k       int
		weights string
		p       float64
	}{
		{"uniform-k5", 5, "uniform", 2},
		{"distance-k5", 5, "distance", 2},
		{"uniform-k1", 1, "uniform", 2},
		{"k-larger-than-n", 500, "uniform", 2},
		{"minkowski-p3", 7, "uniform", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n, d := 120, 4
			x := make([][]float64, n)
			y := make([]int, n)
			for i := range x {
				row := make([]float64, d)
				for j := range row {
					// Quantized coordinates create many duplicate rows and
					// therefore exact distance ties.
					row[j] = float64(r.Intn(4))
				}
				x[i] = row
				y[i] = r.Intn(2)
			}
			knn := &KNN{params: Params{
				"n_neighbors": float64(tc.k), "weights": tc.weights, "p": tc.p,
			}}
			if err := knn.Fit(x, y, nil); err != nil {
				t.Fatal(err)
			}
			queries := make([][]float64, 40)
			for i := range queries {
				q := make([]float64, d)
				for j := range q {
					q[j] = float64(r.Intn(4))
				}
				queries[i] = q
			}
			got := knn.Predict(queries)
			want := referenceKNNPredict(knn, queries)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("query %d: heap selection %d, full sort %d", i, got[i], want[i])
				}
			}
		})
	}
}
