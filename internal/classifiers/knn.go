package classifiers

import (
	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "knn",
		Label:  "KNN",
		Linear: false,
		Params: []ParamSpec{
			{Name: "n_neighbors", Kind: Numeric, Default: 5, Min: 1, Max: 200, IsInt: true},
			{Name: "weights", Kind: Categorical, Options: []any{"uniform", "distance"}},
			{Name: "p", Kind: Numeric, Default: 2, Min: 1, Max: 10},
		},
	}, func(p Params) Classifier { return &KNN{params: p} })
}

// KNN is a brute-force k-nearest-neighbours classifier under the Minkowski
// Lp metric, with uniform or inverse-distance vote weighting — the
// scikit-learn surface from Table 1.
type KNN struct {
	params Params
	x      [][]float64
	y      []int
	// xm is the training set packed contiguous row-major at fit time, so
	// the Euclidean predict path can run the blocked distance kernel.
	xm *linalg.Matrix
}

// Name implements Classifier.
func (*KNN) Name() string { return "knn" }

// Fit implements Classifier. KNN is a lazy learner: Fit stores the data
// (plus a contiguous copy for the batched distance kernel).
func (k *KNN) Fit(x [][]float64, y []int, _ *rng.RNG) error {
	if _, _, err := validateFit(x, y); err != nil {
		return err
	}
	k.x = x
	k.y = y
	k.xm = linalg.FromRows(x)
	return nil
}

// Predict implements Classifier. Neighbour selection is a bounded
// k-selection — an O(n log k) max-heap over the n training distances —
// instead of a full O(n log n) sort per query; KNN is the hottest classifier
// in the measurement sweep. Ties at the k-th distance break by training
// index (lowest wins), which makes the selected set deterministic.
func (k *KNN) Predict(x [][]float64) []int {
	kk := k.params.Int("n_neighbors", 5)
	if kk > len(k.x) {
		kk = len(k.x)
	}
	if kk < 1 {
		kk = 1
	}
	p := k.params.Float("p", 2)
	if p < 1 {
		p = 1
	}
	distWeighted := k.params.String("weights", "uniform") == "distance"

	out := make([]int, len(x))
	h := newKHeap(kk)
	if p == 2 && k.xm != nil && k.xm.Rows > 0 {
		k.predictEuclidean(x, out, h, distWeighted)
		return out
	}
	for qi, q := range x {
		h.reset()
		for i, row := range k.x {
			var dist float64
			if p == 2 {
				dist = linalg.SquaredEuclidean(row, q)
			} else {
				dist = linalg.MinkowskiDistance(row, q, p)
			}
			h.offer(dist, i)
		}
		out[qi] = h.vote(k.y, distWeighted)
	}
	return out
}

// knnQueryBlock bounds the distance-buffer footprint: one block of query
// rows is scored against every training row per kernel call, so the tile
// of training rows the kernel keeps cache-resident is reused across the
// whole block instead of one query.
const knnQueryBlock = 32

// predictEuclidean is the p=2 fast path: query blocks stream through the
// blocked SquaredEuclideanBatch kernel into a reused buffer, then each
// query's distance row feeds the same bounded-k heap in ascending training
// index — the kernel is bit-identical to per-pair SquaredEuclidean and the
// offer order is unchanged, so the selected neighbour set (including index
// tie-breaks) and the votes match the scalar path exactly.
func (k *KNN) predictEuclidean(x [][]float64, out []int, h *kHeap, distWeighted bool) {
	n := k.xm.Rows
	buf := make([]float64, min(knnQueryBlock, len(x))*n)
	for q0 := 0; q0 < len(x); q0 += knnQueryBlock {
		q1 := min(q0+knnQueryBlock, len(x))
		qs := x[q0:q1]
		d := buf[:len(qs)*n]
		linalg.SquaredEuclideanBatch(d, qs, k.xm)
		for qi := range qs {
			h.reset()
			drow := d[qi*n : (qi+1)*n]
			k0 := min(h.k, n)
			for i := 0; i < k0; i++ {
				h.offer(drow[i], i)
			}
			// Candidates arrive in ascending training index, so every index
			// from here on loses the (dist, idx) tie-break against anything
			// already in the heap: a full heap rejects exactly dist >= worst.
			// The inline check skips the non-inlined offer call for the vast
			// majority of rows — the heap only sees the same offers it would
			// have accepted, so the selected set is unchanged.
			worst := h.dist[0]
			for i := k0; i < n; i++ {
				if dist := drow[i]; dist < worst {
					h.offer(dist, i)
					worst = h.dist[0]
				}
			}
			out[q0+qi] = h.vote(k.y, distWeighted)
		}
	}
}

// kHeap keeps the k nearest (distance, training index) pairs seen so far as
// a binary max-heap ordered lexicographically by (dist, idx): the root is
// the current worst neighbour, so a closer candidate replaces it in O(log k).
type kHeap struct {
	k    int
	dist []float64
	idx  []int
}

func newKHeap(k int) *kHeap {
	return &kHeap{k: k, dist: make([]float64, 0, k), idx: make([]int, 0, k)}
}

func (h *kHeap) reset() {
	h.dist = h.dist[:0]
	h.idx = h.idx[:0]
}

// after reports whether element a orders after element b, i.e. a is a worse
// neighbour under the (dist, idx) lexicographic order.
func (h *kHeap) after(a, b int) bool {
	return h.dist[a] > h.dist[b] || (h.dist[a] == h.dist[b] && h.idx[a] > h.idx[b])
}

// offer considers one candidate: push while under capacity, else replace the
// root when the candidate is nearer than the current worst neighbour.
func (h *kHeap) offer(dist float64, idx int) {
	if len(h.dist) < h.k {
		h.dist = append(h.dist, dist)
		h.idx = append(h.idx, idx)
		for i := len(h.dist) - 1; i > 0; {
			parent := (i - 1) / 2
			if !h.after(i, parent) {
				break
			}
			h.swap(i, parent)
			i = parent
		}
		return
	}
	if dist > h.dist[0] || (dist == h.dist[0] && idx > h.idx[0]) {
		return // not nearer than the current worst
	}
	h.dist[0], h.idx[0] = dist, idx
	h.siftDown(0)
}

// vote tallies the selected neighbours' labels (uniform or inverse-distance
// weighted) and returns the winning class.
func (h *kHeap) vote(y []int, distWeighted bool) int {
	var votes [2]float64
	for j := 0; j < len(h.dist); j++ {
		wgt := 1.0
		if distWeighted {
			wgt = 1 / (h.dist[j] + 1e-9)
		}
		votes[y[h.idx[j]]] += wgt
	}
	if votes[1] > votes[0] {
		return 1
	}
	return 0
}

func (h *kHeap) swap(a, b int) {
	h.dist[a], h.dist[b] = h.dist[b], h.dist[a]
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
}

func (h *kHeap) siftDown(i int) {
	n := len(h.dist)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.after(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.after(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}
