package classifiers

import (
	"sort"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/rng"
)

func init() {
	register(Info{
		Name:   "knn",
		Label:  "KNN",
		Linear: false,
		Params: []ParamSpec{
			{Name: "n_neighbors", Kind: Numeric, Default: 5, Min: 1, Max: 200, IsInt: true},
			{Name: "weights", Kind: Categorical, Options: []any{"uniform", "distance"}},
			{Name: "p", Kind: Numeric, Default: 2, Min: 1, Max: 10},
		},
	}, func(p Params) Classifier { return &KNN{params: p} })
}

// KNN is a brute-force k-nearest-neighbours classifier under the Minkowski
// Lp metric, with uniform or inverse-distance vote weighting — the
// scikit-learn surface from Table 1.
type KNN struct {
	params Params
	x      [][]float64
	y      []int
}

// Name implements Classifier.
func (*KNN) Name() string { return "knn" }

// Fit implements Classifier. KNN is a lazy learner: Fit stores the data.
func (k *KNN) Fit(x [][]float64, y []int, _ *rng.RNG) error {
	if _, _, err := validateFit(x, y); err != nil {
		return err
	}
	k.x = x
	k.y = y
	return nil
}

// Predict implements Classifier.
func (k *KNN) Predict(x [][]float64) []int {
	kk := k.params.Int("n_neighbors", 5)
	if kk > len(k.x) {
		kk = len(k.x)
	}
	if kk < 1 {
		kk = 1
	}
	p := k.params.Float("p", 2)
	if p < 1 {
		p = 1
	}
	distWeighted := k.params.String("weights", "uniform") == "distance"

	out := make([]int, len(x))
	type nd struct {
		dist float64
		y    int
	}
	for qi, q := range x {
		nds := make([]nd, len(k.x))
		for i, row := range k.x {
			var dist float64
			if p == 2 {
				dist = linalg.SquaredEuclidean(row, q)
			} else {
				dist = linalg.MinkowskiDistance(row, q, p)
			}
			nds[i] = nd{dist: dist, y: k.y[i]}
		}
		sort.Slice(nds, func(a, b int) bool { return nds[a].dist < nds[b].dist })
		var votes [2]float64
		for i := 0; i < kk; i++ {
			wgt := 1.0
			if distWeighted {
				wgt = 1 / (nds[i].dist + 1e-9)
			}
			votes[nds[i].y] += wgt
		}
		if votes[1] > votes[0] {
			out[qi] = 1
		}
	}
	return out
}
