package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	yTrue := []int{1, 1, 0, 0, 1, 0}
	yPred := []int{1, 0, 1, 0, 1, 0}
	c, err := NewConfusion(yTrue, yPred)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion %+v", c)
	}
	if c.Total() != 6 {
		t.Fatalf("total %d", c.Total())
	}
}

func TestConfusionRejectsLengthMismatch(t *testing.T) {
	if _, err := NewConfusion([]int{1}, []int{1, 0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfusionRejectsNonBinary(t *testing.T) {
	if _, err := NewConfusion([]int{2}, []int{1}); err == nil {
		t.Fatal("expected error for label 2")
	}
	if _, err := NewConfusion([]int{1}, []int{-1}); err == nil {
		t.Fatal("expected error for label -1")
	}
}

func TestPerfectPrediction(t *testing.T) {
	y := []int{1, 0, 1, 0}
	s, err := Score(y, y)
	if err != nil {
		t.Fatal(err)
	}
	if s.F1 != 1 || s.Accuracy != 1 || s.Precision != 1 || s.Recall != 1 {
		t.Fatalf("perfect scores %+v", s)
	}
}

func TestAllWrong(t *testing.T) {
	s, err := Score([]int{1, 0}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.F1 != 0 || s.Accuracy != 0 {
		t.Fatalf("all-wrong scores %+v", s)
	}
}

func TestKnownF1(t *testing.T) {
	// TP=3, FP=1, FN=2 → P=0.75, R=0.6, F1=2*.75*.6/1.35=2/3
	yTrue := []int{1, 1, 1, 1, 1, 0, 0}
	yPred := []int{1, 1, 1, 0, 0, 1, 0}
	s, _ := Score(yTrue, yPred)
	if math.Abs(s.Precision-0.75) > 1e-12 {
		t.Fatalf("precision %v", s.Precision)
	}
	if math.Abs(s.Recall-0.6) > 1e-12 {
		t.Fatalf("recall %v", s.Recall)
	}
	if math.Abs(s.F1-2.0/3.0) > 1e-12 {
		t.Fatalf("f1 %v", s.F1)
	}
}

func TestDegenerateMetrics(t *testing.T) {
	// No positive predictions → precision 0; no positives in truth → recall 0.
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should produce zeros")
	}
	c2 := Confusion{TN: 5}
	if c2.Accuracy() != 1 || c2.F1() != 0 {
		t.Fatalf("all-negative confusion: acc=%v f1=%v", c2.Accuracy(), c2.F1())
	}
}

func TestScoresGet(t *testing.T) {
	s := Scores{F1: 0.1, Accuracy: 0.2, Precision: 0.3, Recall: 0.4}
	for _, tc := range []struct {
		name string
		want float64
	}{{"f1", 0.1}, {"accuracy", 0.2}, {"precision", 0.3}, {"recall", 0.4}} {
		got, err := s.Get(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("Get(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := s.Get("auc"); err == nil {
		t.Fatal("expected error for unknown metric")
	}
	if len(MetricNames()) != 4 {
		t.Fatal("MetricNames")
	}
}

func TestMeanStdErr(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean nil")
	}
	// Sample of {2,4}: sample var = 2, stderr = sqrt(2/2) = 1.
	if se := StdErr([]float64{2, 4}); math.Abs(se-1) > 1e-12 {
		t.Fatalf("StdErr = %v", se)
	}
	if StdErr([]float64{5}) != 0 {
		t.Fatal("StdErr single")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

// Property: F1 is always in [0,1] and is 1 iff predictions match on all
// positives with no false positives.
func TestQuickF1Bounds(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		if f1 == 1 && (fp != 0 || fn != 0 || tp == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: F1 ≤ max(precision, recall) and ≥ min — harmonic mean bounds.
func TestQuickF1HarmonicBounds(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp) + 1, FP: int(fp), FN: int(fn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
