// Package metrics implements the evaluation metrics the paper reports:
// accuracy, precision, recall and F-score over binary predictions, plus the
// aggregation helpers (means, standard errors) used to summarize a platform
// across the 119-dataset corpus (§3.2).
package metrics

import (
	"fmt"
	"math"
)

// Confusion holds the 2×2 confusion counts for binary classification with
// label 1 treated as the positive class.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies predictions against ground truth. Both slices must
// have equal length and contain only 0/1 labels.
func NewConfusion(yTrue, yPred []int) (Confusion, error) {
	var c Confusion
	if len(yTrue) != len(yPred) {
		return c, fmt.Errorf("metrics: %d truths vs %d predictions", len(yTrue), len(yPred))
	}
	for i := range yTrue {
		t, p := yTrue[i], yPred[i]
		if t>>1 != 0 || p>>1 != 0 || t < 0 || p < 0 {
			return c, fmt.Errorf("metrics: non-binary label at %d: true=%d pred=%d", i, t, p)
		}
		switch {
		case t == 1 && p == 1:
			c.TP++
		case t == 0 && p == 1:
			c.FP++
		case t == 0 && p == 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c, nil
}

// Total returns the number of samples tallied.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is the fraction of correct predictions (0 for empty input).
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Precision is TP/(TP+FP); 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 0 when there are no positive samples.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall — the paper's primary
// metric, chosen because many corpus datasets are class-imbalanced (§3.2).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Scores bundles the four metrics the paper tables report (Table 3).
type Scores struct {
	F1        float64 `json:"f1"`
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// Score evaluates predictions against truth and returns all four metrics.
func Score(yTrue, yPred []int) (Scores, error) {
	c, err := NewConfusion(yTrue, yPred)
	if err != nil {
		return Scores{}, err
	}
	return Scores{
		F1:        c.F1(),
		Accuracy:  c.Accuracy(),
		Precision: c.Precision(),
		Recall:    c.Recall(),
	}, nil
}

// Get returns the named metric from s; valid names are "f1", "accuracy",
// "precision", "recall".
func (s Scores) Get(name string) (float64, error) {
	switch name {
	case "f1":
		return s.F1, nil
	case "accuracy":
		return s.Accuracy, nil
	case "precision":
		return s.Precision, nil
	case "recall":
		return s.Recall, nil
	default:
		return 0, fmt.Errorf("metrics: unknown metric %q", name)
	}
}

// MetricNames lists the metric identifiers in the order the paper's Table 3
// reports them.
func MetricNames() []string { return []string{"f1", "accuracy", "precision", "recall"} }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdErr returns the standard error of the mean of xs (0 for fewer than two
// values). The paper's Figure 4 error bars report this quantity.
func StdErr(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	sampleVar := ss / float64(n-1)
	return math.Sqrt(sampleVar / float64(n))
}

// MinMax returns the smallest and largest value of xs. It panics on empty
// input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("metrics: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
