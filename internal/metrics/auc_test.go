package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAUCPerfectRanking(t *testing.T) {
	y := []int{0, 0, 1, 1}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if auc := AUC(y, scores); auc != 1 {
		t.Fatalf("perfect ranking AUC %v", auc)
	}
	rev := []float64{0.9, 0.8, 0.2, 0.1}
	if auc := AUC(y, rev); auc != 0 {
		t.Fatalf("inverted ranking AUC %v", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	// Constant scores: all tied → 0.5 exactly.
	y := []int{0, 1, 0, 1, 0, 1}
	scores := []float64{5, 5, 5, 5, 5, 5}
	if auc := AUC(y, scores); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied scores AUC %v", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// y:      1    0    1    0
	// scores: 0.9  0.8  0.7  0.1
	// pairs (pos, neg): (0.9,0.8)✓ (0.9,0.1)✓ (0.7,0.8)✗ (0.7,0.1)✓ → 3/4
	y := []int{1, 0, 1, 0}
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	if auc := AUC(y, scores); math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUC %v, want 0.75", auc)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if AUC(nil, nil) != 0.5 {
		t.Fatal("empty input")
	}
	if AUC([]int{1, 1}, []float64{0.1, 0.9}) != 0.5 {
		t.Fatal("single class")
	}
	if AUC([]int{0, 1}, []float64{1}) != 0.5 {
		t.Fatal("length mismatch")
	}
}

// Property: AUC ∈ [0,1] and is invariant under monotone score transforms.
func TestQuickAUCInvariance(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		y := make([]int, len(raw))
		scores := make([]float64, len(raw))
		for i, v := range raw {
			y[i] = int(v) % 2
			scores[i] = float64(v)
		}
		a := AUC(y, scores)
		if a < 0 || a > 1 {
			return false
		}
		// Monotone transform: exp(x/50).
		tx := make([]float64, len(scores))
		for i, s := range scores {
			tx[i] = math.Exp(s / 50)
		}
		return math.Abs(a-AUC(y, tx)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
