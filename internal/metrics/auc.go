package metrics

import "sort"

// AUC computes the area under the ROC curve from real-valued scores, with
// the rank statistic (equivalent to the Mann–Whitney U), averaging ties.
// The paper could not report AUC because PredictionIO and several BigML
// classifiers expose no prediction score (§3.2); the simulated platforms
// reproduce that restriction, but the classifiers themselves can score,
// so the extension analysis compares F1 and AUC where scores exist.
//
// Returns 0.5 when either class is absent.
func AUC(yTrue []int, scores []float64) float64 {
	n := len(yTrue)
	if n == 0 || n != len(scores) {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Assign average ranks to ties.
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for t := i; t <= j; t++ {
			ranks[idx[t]] = avg
		}
		i = j + 1
	}
	var rankSumPos float64
	var nPos, nNeg float64
	for k, y := range yTrue {
		if y == 1 {
			rankSumPos += ranks[k]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSumPos - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}
