package dataset

import (
	"bytes"
	"math"
	"testing"
)

// TestCSVRoundTripFidelity: NaN-missing values and categorical column
// kinds must survive WriteCSV→ReadCSV unchanged — the binary format's
// oracle tests compare against the CSV path, so any drift here would hide
// real corruption there.
func TestCSVRoundTripFidelity(t *testing.T) {
	d := &Dataset{
		Name: "fidelity",
		X: [][]float64{
			{1.5, 2, Missing},
			{Missing, 1, 0.25},
			{-3.75, 3, 1e17},
		},
		Y:       []int{0, 1, 1},
		Kinds:   []FeatureKind{Numeric, Categorical, Numeric},
		Columns: []string{"age", "color", "score"},
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Kinds) != len(d.Kinds) {
		t.Fatalf("Kinds lost: got %v, want %v", got.Kinds, d.Kinds)
	}
	for j, k := range d.Kinds {
		if got.Kinds[j] != k {
			t.Fatalf("Kinds[%d] = %v, want %v", j, got.Kinds[j], k)
		}
	}
	for j, c := range d.Columns {
		if got.Columns[j] != c {
			t.Fatalf("Columns[%d] = %q, want %q", j, got.Columns[j], c)
		}
	}
	for i := range d.X {
		if got.Y[i] != d.Y[i] {
			t.Fatalf("Y[%d] = %d, want %d", i, got.Y[i], d.Y[i])
		}
		for j := range d.X[i] {
			want, have := d.X[i][j], got.X[i][j]
			if math.IsNaN(want) {
				if !math.IsNaN(have) {
					t.Fatalf("X[%d][%d] = %v, want missing", i, j, have)
				}
				continue
			}
			if have != want {
				t.Fatalf("X[%d][%d] = %v, want %v", i, j, have, want)
			}
		}
	}
}

// TestCSVRoundTripAllNumeric: a dataset without categorical columns writes
// plain headers (no suffix) and reads back with empty Kinds, which the
// Dataset contract defines as all-numeric.
func TestCSVRoundTripAllNumeric(t *testing.T) {
	d := &Dataset{
		Name: "numeric",
		X:    [][]float64{{1, 2}, {3, 4}},
		Y:    []int{0, 1},
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(categoricalSuffix)) {
		t.Fatal("all-numeric dataset wrote a categorical marker")
	}
	got, err := ReadCSV(&buf, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Kinds) != 0 {
		t.Fatalf("all-numeric dataset read back Kinds %v", got.Kinds)
	}
	if got.Columns[0] != "f0" || got.Columns[1] != "f1" {
		t.Fatalf("generated columns %v", got.Columns)
	}
}
