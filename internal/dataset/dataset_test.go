package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mlaasbench/internal/rng"
)

func sample() *Dataset {
	return &Dataset{
		Name:   "toy",
		Domain: DomainSynthetic,
		X: [][]float64{
			{1, 10}, {2, 20}, {3, 30}, {4, 40},
			{5, 50}, {6, 60}, {7, 70}, {8, 80},
		},
		Y: []int{0, 0, 0, 0, 1, 1, 1, 1},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	d := sample()
	d.Y[0] = 2
	if err := d.Validate(); err == nil {
		t.Fatal("expected error for label 2")
	}
}

func TestValidateCatchesRagged(t *testing.T) {
	d := sample()
	d.X[3] = []float64{1}
	if err := d.Validate(); err == nil {
		t.Fatal("expected error for ragged row")
	}
}

func TestValidateCatchesLengthMismatch(t *testing.T) {
	d := sample()
	d.Y = d.Y[:5]
	if err := d.Validate(); err == nil {
		t.Fatal("expected error for X/Y mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.X[0][0] = 99
	c.Y[0] = 1
	if d.X[0][0] == 99 || d.Y[0] == 1 {
		t.Fatal("clone aliases original")
	}
}

func TestClassBalance(t *testing.T) {
	if b := sample().ClassBalance(); b != 0.5 {
		t.Fatalf("balance = %v", b)
	}
	empty := &Dataset{}
	if empty.ClassBalance() != 0 {
		t.Fatal("empty balance")
	}
}

func TestImputeMedian(t *testing.T) {
	d := &Dataset{
		Name: "m",
		X: [][]float64{
			{1, Missing},
			{3, 5},
			{Missing, 7},
			{5, 9},
		},
		Y: []int{0, 0, 1, 1},
	}
	if !d.HasMissing() {
		t.Fatal("HasMissing false before impute")
	}
	d.Impute()
	if d.HasMissing() {
		t.Fatal("missing values remain after impute")
	}
	if d.X[2][0] != 3 { // median of {1,3,5}
		t.Fatalf("imputed f0 = %v, want 3", d.X[2][0])
	}
	if d.X[0][1] != 7 { // median of {5,7,9}
		t.Fatalf("imputed f1 = %v, want 7", d.X[0][1])
	}
}

func TestImputeAllMissingColumn(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{Missing}, {Missing}},
		Y: []int{0, 1},
	}
	d.Impute()
	if d.X[0][0] != 0 || d.X[1][0] != 0 {
		t.Fatal("all-missing column should impute to 0")
	}
}

func TestImputeConstant(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{1, Missing}, {Missing, 4}},
		Y: []int{0, 1},
	}
	d.ImputeConstant(-7)
	if d.X[0][1] != -7 || d.X[1][0] != -7 {
		t.Fatalf("constant imputation wrong: %v", d.X)
	}
	if d.X[0][0] != 1 || d.X[1][1] != 4 {
		t.Fatal("observed values modified")
	}
}

func TestEncodeCategorical(t *testing.T) {
	d := &Dataset{
		X: [][]float64{
			{10, 7.5},
			{30, 7.5},
			{10, 2.5},
			{50, 2.5},
		},
		Y:     []int{0, 0, 1, 1},
		Kinds: []FeatureKind{Categorical, Numeric},
	}
	d.EncodeCategorical()
	want0 := []float64{1, 2, 1, 3} // first-appearance order
	for i := range want0 {
		if d.X[i][0] != want0[i] {
			t.Fatalf("encoded f0[%d] = %v, want %v", i, d.X[i][0], want0[i])
		}
		if d.X[i][1] != []float64{7.5, 7.5, 2.5, 2.5}[i] {
			t.Fatal("numeric column was modified")
		}
	}
	if d.Kinds[0] != Numeric {
		t.Fatal("kind not updated after encoding")
	}
}

func TestEncodeCategoricalSkipsMissing(t *testing.T) {
	d := &Dataset{
		X:     [][]float64{{5}, {Missing}, {5}},
		Y:     []int{0, 1, 0},
		Kinds: []FeatureKind{Categorical},
	}
	d.EncodeCategorical()
	if !math.IsNaN(d.X[1][0]) {
		t.Fatal("missing value was encoded")
	}
	if d.X[0][0] != 1 || d.X[2][0] != 1 {
		t.Fatal("same category encoded differently")
	}
}

func TestStratifiedSplitRatio(t *testing.T) {
	d := sample()
	sp := d.StratifiedSplit(0.7, rng.New(1))
	if sp.Train.N()+sp.Test.N() != d.N() {
		t.Fatalf("split loses samples: %d + %d != %d", sp.Train.N(), sp.Test.N(), d.N())
	}
	// Both classes present on both sides.
	if sp.Train.ClassBalance() == 0 || sp.Train.ClassBalance() == 1 {
		t.Fatalf("train balance %v", sp.Train.ClassBalance())
	}
	if sp.Test.ClassBalance() == 0 || sp.Test.ClassBalance() == 1 {
		t.Fatalf("test balance %v", sp.Test.ClassBalance())
	}
}

func TestStratifiedSplitDeterministic(t *testing.T) {
	d := sample()
	a := d.StratifiedSplit(0.7, rng.New(5))
	b := d.StratifiedSplit(0.7, rng.New(5))
	for i := range a.Train.X {
		if a.Train.X[i][0] != b.Train.X[i][0] {
			t.Fatal("same seed produced different splits")
		}
	}
}

func TestStratifiedSplitTiny(t *testing.T) {
	d := &Dataset{
		X: [][]float64{{1}, {2}, {3}, {4}},
		Y: []int{0, 0, 1, 1},
	}
	sp := d.StratifiedSplit(0.7, rng.New(2))
	// With 2 per class the guard keeps one of each class on each side.
	if sp.Train.N() != 2 || sp.Test.N() != 2 {
		t.Fatalf("tiny split sizes %d/%d", sp.Train.N(), sp.Test.N())
	}
}

func TestSubsetCopies(t *testing.T) {
	d := sample()
	s := d.Subset([]int{0, 2}, "/s")
	s.X[0][0] = 42
	if d.X[0][0] == 42 {
		t.Fatal("subset aliases parent")
	}
	if s.Name != "toy/s" || s.N() != 2 || s.Y[1] != 0 {
		t.Fatalf("subset wrong: %+v", s)
	}
}

func TestSelectFeatures(t *testing.T) {
	d := sample()
	d.Columns = []string{"a", "b"}
	s := d.SelectFeatures([]int{1})
	if s.D() != 1 || s.X[0][0] != 10 {
		t.Fatalf("SelectFeatures wrong: %v", s.X[0])
	}
	if s.Columns[0] != "b" {
		t.Fatal("column names not remapped")
	}
	if s.N() != d.N() {
		t.Fatal("sample count changed")
	}
}

func TestMeshGridCoverage(t *testing.T) {
	d := sample()
	pts := d.MeshGrid(10, 0.5)
	if len(pts) != 100 {
		t.Fatalf("mesh size %d", len(pts))
	}
	// Corners must reach the padded bounding box.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
	}
	if minX != 0.5 || maxX != 8.5 {
		t.Fatalf("mesh X range [%v, %v], want [0.5, 8.5]", minX, maxX)
	}
}

func TestMeshGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-D dataset")
		}
	}()
	d := &Dataset{X: [][]float64{{1}}, Y: []int{0}}
	d.MeshGrid(10, 0)
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	d.X[1][0] = Missing
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "toy")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != d.N() || got.D() != d.D() {
		t.Fatalf("round trip shape %dx%d", got.N(), got.D())
	}
	if !math.IsNaN(got.X[1][0]) {
		t.Fatal("missing value lost in round trip")
	}
	for i := range d.Y {
		if got.Y[i] != d.Y[i] {
			t.Fatal("labels corrupted")
		}
	}
	if got.X[3][1] != 40 {
		t.Fatalf("value corrupted: %v", got.X[3][1])
	}
}

func TestReadCSVRejectsBadLabel(t *testing.T) {
	csv := "f0,label\n1.5,2\n"
	if _, err := ReadCSV(strings.NewReader(csv), "bad"); err == nil {
		t.Fatal("expected error for label 2")
	}
}

func TestReadCSVRejectsMissingLabelColumn(t *testing.T) {
	csv := "f0,f1\n1,2\n"
	if _, err := ReadCSV(strings.NewReader(csv), "bad"); err == nil {
		t.Fatal("expected error for absent label header")
	}
}

func TestReadCSVRejectsBadFloat(t *testing.T) {
	csv := "f0,label\nxyz,1\n"
	if _, err := ReadCSV(strings.NewReader(csv), "bad"); err == nil {
		t.Fatal("expected error for non-numeric feature")
	}
}

// Property: a stratified split never loses or duplicates samples and keeps
// both sides non-empty for any feasible fraction and seed.
func TestQuickSplitConservation(t *testing.T) {
	f := func(seed uint64, fracRaw uint8) bool {
		frac := 0.2 + 0.6*float64(fracRaw)/255.0
		d := &Dataset{}
		r := rng.New(seed)
		n := 10 + r.Intn(60)
		for i := 0; i < n; i++ {
			d.X = append(d.X, []float64{r.NormFloat64()})
			d.Y = append(d.Y, r.Intn(2))
		}
		// Ensure both classes exist.
		d.Y[0], d.Y[1] = 0, 1
		sp := d.StratifiedSplit(frac, r)
		return sp.Train.N()+sp.Test.N() == n && sp.Train.N() > 0 && sp.Test.N() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: imputation removes every missing value no matter the pattern.
func TestQuickImputeTotal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, d := 3+r.Intn(20), 1+r.Intn(6)
		ds := &Dataset{}
		for i := 0; i < n; i++ {
			row := make([]float64, d)
			for j := range row {
				if r.Bernoulli(0.3) {
					row[j] = Missing
				} else {
					row[j] = r.NormFloat64()
				}
			}
			ds.X = append(ds.X, row)
			ds.Y = append(ds.Y, r.Intn(2))
		}
		ds.Impute()
		return !ds.HasMissing()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
