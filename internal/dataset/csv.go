package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// categoricalSuffix marks a categorical feature column in the CSV header,
// so the column kinds survive a WriteCSV→ReadCSV round-trip (values alone
// can't distinguish an ordinal-coded categorical from a numeric feature).
const categoricalSuffix = ":categorical"

// WriteCSV serializes the dataset with a header row. Feature columns come
// first (named f0..fN-1 when Columns is empty), with categorical columns
// marked by a ":categorical" name suffix; the label column is last and
// named "label". Missing values are written as empty fields.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	width := d.D()
	header := make([]string, width+1)
	for j := 0; j < width; j++ {
		if len(d.Columns) > 0 {
			header[j] = d.Columns[j]
		} else {
			header[j] = fmt.Sprintf("f%d", j)
		}
		if len(d.Kinds) > 0 && d.Kinds[j] == Categorical {
			header[j] += categoricalSuffix
		}
	}
	header[width] = "label"
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, width+1)
	for i, row := range d.X {
		for j, v := range row {
			if math.IsNaN(v) {
				rec[j] = ""
			} else {
				rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		rec[width] = strconv.Itoa(d.Y[i])
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset in the WriteCSV format: a header whose last
// column is the label (feature names ending in ":categorical" restore the
// column's kind), feature values as floats (empty = missing), labels as
// 0/1.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: header has %d columns, need at least 2", len(header))
	}
	if got := header[len(header)-1]; !strings.EqualFold(got, "label") {
		return nil, fmt.Errorf("dataset: last column is %q, want \"label\"", got)
	}
	width := len(header) - 1
	d := &Dataset{Name: name, Columns: make([]string, width)}
	for j, col := range header[:width] {
		if cut, ok := strings.CutSuffix(col, categoricalSuffix); ok {
			if d.Kinds == nil {
				d.Kinds = make([]FeatureKind, width) // zero value = Numeric
			}
			col = cut
			d.Kinds[j] = Categorical
		}
		d.Columns[j] = col
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line+1, err)
		}
		line++
		if len(rec) != width+1 {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(rec), width+1)
		}
		row := make([]float64, width)
		for j := 0; j < width; j++ {
			f := strings.TrimSpace(rec[j])
			if f == "" {
				row[j] = Missing
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", line, j, err)
			}
			row[j] = v
		}
		y, err := strconv.Atoi(strings.TrimSpace(rec[width]))
		if err != nil || (y != 0 && y != 1) {
			return nil, fmt.Errorf("dataset: line %d: invalid label %q", line, rec[width])
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
