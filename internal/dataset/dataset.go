// Package dataset defines the labeled-dataset representation shared by the
// whole reproduction: a numeric feature matrix with binary labels, plus the
// preprocessing the paper applies locally before uploading to any platform
// (§3.1): categorical→ordinal mapping, median imputation of missing values,
// and a stratified 70/30 train/test split.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"mlaasbench/internal/rng"
)

// Domain is the application domain a dataset belongs to (Figure 3a).
type Domain string

// Application domains from Figure 3(a) of the paper.
const (
	DomainLifeScience Domain = "Life Science"
	DomainComputer    Domain = "Computer & Games"
	DomainSynthetic   Domain = "Synthetic"
	DomainSocial      Domain = "Social Science"
	DomainPhysical    Domain = "Physical Science"
	DomainFinancial   Domain = "Financial & Business"
	DomainOther       Domain = "Other"
)

// Missing is the sentinel encoding a missing feature value in raw data.
// Impute replaces it before any classifier sees the matrix.
var Missing = math.NaN()

// FeatureKind distinguishes numeric from categorical raw features.
type FeatureKind int

// Feature kinds.
const (
	Numeric FeatureKind = iota
	Categorical
)

// Dataset is a labeled binary-classification dataset. X is row-major:
// X[i] is sample i's feature vector; Y[i] ∈ {0, 1}.
type Dataset struct {
	Name    string
	Domain  Domain
	X       [][]float64
	Y       []int
	Kinds   []FeatureKind // len = #features; empty means all numeric
	Columns []string      // optional feature names

	// Linear records whether the generator considers the underlying
	// concept linearly separable; used as ground truth in §6 analyses.
	// Zero value false simply means "not known linear".
	Linear bool
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.X) }

// D returns the number of features (0 for an empty dataset).
func (d *Dataset) D() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural invariants: rectangular X, labels in {0,1},
// matching lengths, and kind/column arity.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset %q: %d samples but %d labels", d.Name, len(d.X), len(d.Y))
	}
	w := d.D()
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("dataset %q: row %d has %d features, want %d", d.Name, i, len(row), w)
		}
	}
	for i, y := range d.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("dataset %q: label %d is %d, want 0 or 1", d.Name, i, y)
		}
	}
	if len(d.Kinds) != 0 && len(d.Kinds) != w {
		return fmt.Errorf("dataset %q: %d kinds for %d features", d.Name, len(d.Kinds), w)
	}
	if len(d.Columns) != 0 && len(d.Columns) != w {
		return fmt.Errorf("dataset %q: %d column names for %d features", d.Name, len(d.Columns), w)
	}
	return nil
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		Name:   d.Name,
		Domain: d.Domain,
		X:      make([][]float64, len(d.X)),
		Y:      append([]int(nil), d.Y...),
		Linear: d.Linear,
	}
	for i, row := range d.X {
		c.X[i] = append([]float64(nil), row...)
	}
	if d.Kinds != nil {
		c.Kinds = append([]FeatureKind(nil), d.Kinds...)
	}
	if d.Columns != nil {
		c.Columns = append([]string(nil), d.Columns...)
	}
	return c
}

// ClassBalance returns the fraction of positive (label 1) samples.
func (d *Dataset) ClassBalance() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	pos := 0
	for _, y := range d.Y {
		pos += y
	}
	return float64(pos) / float64(len(d.Y))
}

// HasMissing reports whether any feature value is the Missing sentinel.
func (d *Dataset) HasMissing() bool {
	for _, row := range d.X {
		for _, v := range row {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}

// Impute replaces missing values with the per-feature median of the observed
// values, in place, following the paper's preprocessing (§3.1). Features
// with no observed values are imputed with 0.
func (d *Dataset) Impute() {
	w := d.D()
	for j := 0; j < w; j++ {
		var observed []float64
		for i := range d.X {
			if v := d.X[i][j]; !math.IsNaN(v) {
				observed = append(observed, v)
			}
		}
		if len(observed) == len(d.X) {
			continue // nothing missing in this column
		}
		med := 0.0
		if len(observed) > 0 {
			med = median(observed)
		}
		for i := range d.X {
			if math.IsNaN(d.X[i][j]) {
				d.X[i][j] = med
			}
		}
	}
}

// ImputeConstant replaces every missing value with v — the naive
// alternative to median imputation, kept for the DESIGN.md ablation.
func (d *Dataset) ImputeConstant(v float64) {
	for i := range d.X {
		for j := range d.X[i] {
			if math.IsNaN(d.X[i][j]) {
				d.X[i][j] = v
			}
		}
	}
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// EncodeCategorical re-encodes each categorical feature's distinct values as
// ordinals {1..N} in order of first appearance, matching the paper's
// {C1,...,CN} → {1,...,N} convention (§3.1). Numeric features and missing
// values are left untouched. After encoding, all Kinds become Numeric.
func (d *Dataset) EncodeCategorical() {
	if len(d.Kinds) == 0 {
		return
	}
	for j, kind := range d.Kinds {
		if kind != Categorical {
			continue
		}
		codes := map[float64]float64{}
		next := 1.0
		for i := range d.X {
			v := d.X[i][j]
			if math.IsNaN(v) {
				continue
			}
			code, ok := codes[v]
			if !ok {
				code = next
				codes[v] = code
				next++
			}
			d.X[i][j] = code
		}
		d.Kinds[j] = Numeric
	}
}

// Split holds a train/test partition of a dataset.
type Split struct {
	Train, Test *Dataset
}

// StratifiedSplit partitions the dataset into train/test with the given
// train fraction, preserving the class ratio in both parts. The paper uses
// a random 70/30 split (§3.1). The split is deterministic given r.
func (d *Dataset) StratifiedSplit(trainFrac float64, r *rng.RNG) Split {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: train fraction %v outside (0,1)", trainFrac))
	}
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	r.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	r.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	nPosTrain := int(math.Round(trainFrac * float64(len(pos))))
	nNegTrain := int(math.Round(trainFrac * float64(len(neg))))
	// Keep at least one sample of each present class on each side when
	// possible, so tiny datasets stay trainable and testable.
	if len(pos) >= 2 {
		nPosTrain = clampInt(nPosTrain, 1, len(pos)-1)
	}
	if len(neg) >= 2 {
		nNegTrain = clampInt(nNegTrain, 1, len(neg)-1)
	}

	trainIdx := append(append([]int(nil), pos[:nPosTrain]...), neg[:nNegTrain]...)
	testIdx := append(append([]int(nil), pos[nPosTrain:]...), neg[nNegTrain:]...)
	r.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	r.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })

	return Split{Train: d.Subset(trainIdx, "/train"), Test: d.Subset(testIdx, "/test")}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Subset returns a new dataset containing the given sample indices. The
// feature vectors are copied so mutating the subset does not alias d.
func (d *Dataset) Subset(idx []int, suffix string) *Dataset {
	s := &Dataset{
		Name:   d.Name + suffix,
		Domain: d.Domain,
		X:      make([][]float64, len(idx)),
		Y:      make([]int, len(idx)),
		Linear: d.Linear,
	}
	if d.Kinds != nil {
		s.Kinds = append([]FeatureKind(nil), d.Kinds...)
	}
	if d.Columns != nil {
		s.Columns = append([]string(nil), d.Columns...)
	}
	for k, i := range idx {
		s.X[k] = append([]float64(nil), d.X[i]...)
		s.Y[k] = d.Y[i]
	}
	return s
}

// SelectFeatures returns a copy of the dataset keeping only the feature
// columns in cols (in the given order).
func (d *Dataset) SelectFeatures(cols []int) *Dataset {
	s := &Dataset{
		Name:   d.Name,
		Domain: d.Domain,
		X:      make([][]float64, len(d.X)),
		Y:      append([]int(nil), d.Y...),
		Linear: d.Linear,
	}
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for k, c := range cols {
			nr[k] = row[c]
		}
		s.X[i] = nr
	}
	if len(d.Kinds) > 0 {
		s.Kinds = make([]FeatureKind, len(cols))
		for k, c := range cols {
			s.Kinds[k] = d.Kinds[c]
		}
	}
	if len(d.Columns) > 0 {
		s.Columns = make([]string, len(cols))
		for k, c := range cols {
			s.Columns[k] = d.Columns[c]
		}
	}
	return s
}

// MeshGrid returns the points of a steps×steps grid covering the bounding
// box of the first two features, expanded by pad on each side. The paper
// visualizes black-box decision boundaries by querying predictions on a
// 100×100 mesh (§6.1). The dataset must have at least 2 features.
func (d *Dataset) MeshGrid(steps int, pad float64) [][]float64 {
	if d.D() < 2 {
		panic("dataset: MeshGrid needs at least 2 features")
	}
	if steps < 2 {
		panic("dataset: MeshGrid needs at least 2 steps")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, row := range d.X {
		minX = math.Min(minX, row[0])
		maxX = math.Max(maxX, row[0])
		minY = math.Min(minY, row[1])
		maxY = math.Max(maxY, row[1])
	}
	minX, maxX = minX-pad, maxX+pad
	minY, maxY = minY-pad, maxY+pad
	pts := make([][]float64, 0, steps*steps)
	for i := 0; i < steps; i++ {
		x := minX + (maxX-minX)*float64(i)/float64(steps-1)
		for j := 0; j < steps; j++ {
			y := minY + (maxY-minY)*float64(j)/float64(steps-1)
			pts = append(pts, []float64{x, y})
		}
	}
	return pts
}

// Summary describes a dataset in one line, used by the corpus tooling.
func (d *Dataset) Summary() string {
	return fmt.Sprintf("%-28s %-20s n=%-6d d=%-5d pos=%.2f linear=%v",
		d.Name, d.Domain, d.N(), d.D(), d.ClassBalance(), d.Linear)
}
