// Command mlaas-datasets inspects and exports the 119-dataset corpus.
//
// Usage:
//
//	mlaas-datasets list [-profile quick|full]          # one line per dataset
//	mlaas-datasets stats [-profile quick|full]         # Figure 3 marginals
//	mlaas-datasets export -name CIRCLE [-out x.csv]    # write one dataset as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"mlaasbench/internal/core"
	"mlaasbench/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	profileName := fs.String("profile", "quick", "generation profile: quick or full")
	name := fs.String("name", "", "dataset name (export)")
	out := fs.String("out", "", "output file (export; default stdout)")
	seed := fs.Uint64("seed", synth.CorpusSeed, "generation seed")
	_ = fs.Parse(os.Args[2:])

	profile, err := synth.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "list":
		for _, spec := range synth.Corpus() {
			ds := synth.GenerateClean(spec, profile, *seed)
			fmt.Println(ds.Summary())
		}
	case "stats":
		core.WriteFig3(os.Stdout, profile, *seed)
	case "export":
		if *name == "" {
			fatal(fmt.Errorf("export requires -name"))
		}
		spec, ok := synth.CorpusByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q", *name))
		}
		ds := synth.GenerateClean(spec, profile, *seed)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := ds.WriteCSV(w); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mlaas-datasets {list|stats|export} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlaas-datasets:", err)
	os.Exit(1)
}
