// Command mlaas-datasets inspects and exports the 119-dataset corpus.
//
// Usage:
//
//	mlaas-datasets list [-profile quick|full]          # one line per dataset
//	mlaas-datasets stats [-profile quick|full]         # Figure 3 marginals
//	mlaas-datasets export -name CIRCLE [-out x.csv]    # write one dataset as CSV
//	mlaas-datasets convert -out dir [-name CIRCLE]     # write MLDS binary files
//	mlaas-datasets inspect -in x.mlds                  # header/CRC/column stats
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"mlaasbench/internal/core"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/store"
	"mlaasbench/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	profileName := fs.String("profile", "quick", "generation profile: quick or full")
	name := fs.String("name", "", "dataset name (export, convert)")
	out := fs.String("out", "", "output file or directory (export, convert)")
	in := fs.String("in", "", "input .mlds file (inspect)")
	seed := fs.Uint64("seed", synth.CorpusSeed, "generation seed")
	_ = fs.Parse(os.Args[2:])

	profile, err := synth.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "list":
		for _, spec := range synth.Corpus() {
			ds := synth.GenerateClean(spec, profile, *seed)
			fmt.Println(ds.Summary())
		}
	case "stats":
		core.WriteFig3(os.Stdout, profile, *seed)
	case "export":
		if *name == "" {
			fatal(fmt.Errorf("export requires -name"))
		}
		spec, ok := synth.CorpusByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q", *name))
		}
		ds := synth.GenerateClean(spec, profile, *seed)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := ds.WriteCSV(w); err != nil {
			fatal(err)
		}
	case "convert":
		if *out == "" {
			fatal(fmt.Errorf("convert requires -out directory"))
		}
		if err := convert(*out, *name, profile, *seed); err != nil {
			fatal(err)
		}
	case "inspect":
		if *in == "" {
			fatal(fmt.Errorf("inspect requires -in file.mlds"))
		}
		if err := inspect(os.Stdout, *in); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

// convert writes corpus datasets as MLDS files under dir — the whole corpus
// by default, a single dataset with -name.
func convert(dir, only string, profile synth.Profile, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	specs := synth.Corpus()
	if only != "" {
		spec, ok := synth.CorpusByName(only)
		if !ok {
			return fmt.Errorf("unknown dataset %q", only)
		}
		specs = []synth.Spec{spec}
	}
	for _, spec := range specs {
		ds := synth.GenerateClean(spec, profile, seed)
		path := filepath.Join(dir, mldsFileName(spec.Name))
		if err := store.WriteDataset(path, ds); err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		fmt.Printf("wrote %-40s n=%-6d d=%-4d\n", path, ds.N(), ds.D())
	}
	return nil
}

// mldsFileName maps a dataset name to a filesystem-safe .mlds filename.
func mldsFileName(name string) string {
	safe := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '_'
		}
		return r
	}, name)
	return safe + ".mlds"
}

// inspect opens an MLDS file (verifying its CRC in the process) and prints
// the header, mapping mode, and per-column summary statistics.
func inspect(w *os.File, path string) error {
	f, err := store.OpenDataset(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d := f.Dataset()
	fmt.Fprintf(w, "file:    %s\n", path)
	fmt.Fprintf(w, "name:    %s\n", f.Name())
	fmt.Fprintf(w, "domain:  %s\n", d.Domain)
	fmt.Fprintf(w, "shape:   %d rows × %d cols\n", f.Rows(), f.Cols())
	fmt.Fprintf(w, "linear:  %v\n", d.Linear)
	fmt.Fprintf(w, "mapped:  %v\n", f.Mapped())
	fmt.Fprintf(w, "crc:     ok\n")
	fmt.Fprintf(w, "balance: %.3f positive\n", d.ClassBalance())
	for j := 0; j < f.Cols(); j++ {
		col := f.Col(j)
		name := fmt.Sprintf("f%d", j)
		if len(d.Columns) > 0 {
			name = d.Columns[j]
		}
		kind := "numeric"
		if len(d.Kinds) > 0 && d.Kinds[j] == dataset.Categorical {
			kind = "categorical"
		}
		lo, hi, missing := math.Inf(1), math.Inf(-1), 0
		for _, v := range col {
			if math.IsNaN(v) {
				missing++
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		fmt.Fprintf(w, "col %-3d %-16s %-11s min=%-12.6g max=%-12.6g missing=%d\n",
			j, name, kind, lo, hi, missing)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mlaas-datasets {list|stats|export|convert|inspect} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlaas-datasets:", err)
	os.Exit(1)
}
