// Command mlaas-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mlaas-bench [flags] <experiment> [experiment...]
//	mlaas-bench all                       # everything
//
// Experiments: fig3, table2, fig4, table3, fig5, table4, fig6, fig7, fig8,
// fig9, fig10, fig11, fig12, fig13, table5, table6, fig14, infer — plus the
// extensions timecost (training-time analysis), domains (per-domain
// breakdown), auc (metric study), robust (label-noise robustness) and csv
// (raw measurement export).
//
// Flags:
//
//	-profile quick|full   corpus scale (default quick)
//	-datasets N           limit the corpus to its first N datasets (0 = all 119)
//	-seed S               measurement seed
//	-workers N            sweep worker pool size (default: all CPUs; 1 = serial).
//	                      Any worker count produces byte-identical measurements.
//	-shards N             row shards per predict stage (default 1 = serial;
//	                      0 = one per CPU). The pool already saturates the
//	                      cores, so raise this only for low-config sweeps
//	                      with huge test sets. Predictions are byte-identical
//	                      at any shard count.
//	-cache FILE           persist/reuse the sweep's raw measurements
//	-fleet URLS           shard the sweep across a fleet of mlaas-server
//	                      replicas (comma-separated base URLs); each
//	                      (platform, dataset) unit runs on its consistent-hash
//	                      owner and results merge byte-identically to a
//	                      local sweep
//	-v                    progress logging
//	-progress             repaint a live done/total/rate/ETA line on stderr
//	                      while the sweep runs (off when -v is set)
//	-progress-addr :8090  serve the same snapshot as JSON at /progress
//	-trace-out FILE       export the run's retained traces as JSONL
//	                      (analyse with mlaas-trace)
//	-telemetry            print the end-of-run telemetry summary to stderr
//	                      (per-stage p50/p95/p99 latency, counter totals;
//	                      default true)
//
// One measurement sweep is shared across all requested experiments, so
// "mlaas-bench all" costs one sweep plus the probe analyses.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"time"

	"mlaasbench/internal/classifiers"
	"mlaasbench/internal/core"
	"mlaasbench/internal/linalg"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/platforms"
	"mlaasbench/internal/profiling"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

var sweepExperiments = map[string]bool{
	"table2": true, "fig4": true, "table3": true, "fig5": true,
	"table4": true, "fig6": true, "fig7": true, "fig8": true,
	"fig11": true, "fig12": true, "table6": true, "fig14": true, "infer": true,
	"timecost": true, "csv": true, "domains": true,
}

func main() {
	profileName := flag.String("profile", "quick", "corpus profile: quick or full")
	maxDatasets := flag.Int("datasets", 0, "limit corpus size (0 = all 119)")
	seed := flag.Uint64("seed", synth.CorpusSeed, "measurement seed")
	workers := flag.Int("workers", runtime.NumCPU(), "sweep worker pool size (1 = serial)")
	shards := flag.Int("shards", 1, "row shards per predict stage (1 = serial, 0 = one per CPU)")
	verbose := flag.Bool("v", false, "progress logging")
	cache := flag.String("cache", "", "sweep cache file: load if present, else run and save")
	telemetrySummary := flag.Bool("telemetry", true, "print telemetry summary (stage latencies, counters) to stderr at exit")
	progress := flag.Bool("progress", false, "repaint a live sweep progress line on stderr (ignored with -v)")
	progressAddr := flag.String("progress-addr", "", "serve sweep progress as JSON at this address under /progress")
	traceOut := flag.String("trace-out", "", "export retained traces as JSONL here (analyse with mlaas-trace)")
	fleet := flag.String("fleet", "",
		"comma-separated mlaas-server replica URLs: shard the sweep's (platform, dataset) units "+
			"across the fleet by consistent hash instead of measuring in-process. Results are "+
			"byte-identical to a local sweep at any replica count (modulo wall-clock micros).")
	profileDir := flag.String("profile-dir", "",
		"capture continuous-profiler bundles into this directory: periodic captures during the sweep plus one tagged end-of-run bundle (inspect with mlaas-profile)")
	profileInterval := flag.Duration("profile-interval", 30*time.Second, "period between periodic captures while the run is in flight")
	flag.Parse()

	// Kernel durations land in the default registry so the -telemetry
	// summary shows where GEMM/distance time goes across the sweep.
	linalg.SetKernelHook(func(kernel string, seconds float64) {
		telemetry.Default().Histogram(telemetry.KernelHistogram, "kernel", kernel).Observe(seconds)
	})

	// The profiler shares the default registry with everything above, so
	// its sidecars link the slowest sweep traces and its counters land in
	// the -telemetry summary.
	var prof *profiling.Profiler
	if *profileDir != "" {
		var err error
		prof, err = profiling.New(profiling.Config{Dir: *profileDir, Interval: *profileInterval})
		if err != nil {
			fatal(err)
		}
		prof.Start()
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mlaas-bench [flags] <experiment>... | all")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"fig3", "table2", "fig4", "table3", "fig5", "table4",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
			"table5", "infer", "table6", "fig14", "timecost", "domains"}
	}

	profile, err := synth.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	needsSweep := false
	for _, a := range args {
		if sweepExperiments[a] {
			needsSweep = true
		}
	}
	var sw *core.Sweep
	if needsSweep {
		tracker := core.NewProgressTracker()
		opts := core.Options{
			Profile:          profile,
			Seed:             *seed,
			MaxDatasets:      *maxDatasets,
			StorePredictions: true,
			Workers:          *workers,
			PredictShards:    *shards,
			Tracker:          tracker,
		}
		if *verbose {
			opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		}
		if *progressAddr != "" {
			mux := http.NewServeMux()
			mux.Handle("/progress", tracker.Handler())
			go func() {
				if err := http.ListenAndServe(*progressAddr, mux); err != nil {
					fmt.Fprintf(os.Stderr, "mlaas-bench: progress server: %v\n", err)
				}
			}()
		}
		// The live line repaints in place twice a second; -v's per-unit
		// lines would shred it, so -v wins when both are set.
		var stopLine func()
		if *progress && !*verbose {
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				tick := time.NewTicker(500 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-tick.C:
						fmt.Fprintf(os.Stderr, "\r\033[K%s", tracker.Snapshot().Line())
					case <-done:
						fmt.Fprintf(os.Stderr, "\r\033[K%s\n", tracker.Snapshot().Line())
						return
					}
				}
			}()
			stopLine = func() { close(done); wg.Wait() }
		}
		if *fleet != "" {
			var endpoints []string
			for _, u := range strings.Split(*fleet, ",") {
				if u = strings.TrimSpace(u); u != "" {
					endpoints = append(endpoints, u)
				}
			}
			fmt.Fprintf(os.Stderr, "running sharded measurement sweep (%d datasets, profile %s, %d workers, %d replicas)...\n",
				datasetCount(*maxDatasets), profile.Name, *workers, len(endpoints))
			sw, err = core.LoadOrRunSweepFleet(ctx, *cache, opts, endpoints)
		} else {
			fmt.Fprintf(os.Stderr, "running measurement sweep (%d datasets, profile %s, %d workers)...\n",
				datasetCount(*maxDatasets), profile.Name, *workers)
			sw, err = core.LoadOrRunSweep(ctx, *cache, opts)
		}
		if stopLine != nil {
			stopLine()
		}
		if err != nil {
			fatal(err)
		}
	}

	var inferRep *core.InferenceReport
	inference := func() *core.InferenceReport {
		if inferRep == nil {
			rep, err := sw.InferFamilies(nil)
			if err != nil {
				fatal(err)
			}
			inferRep = rep
		}
		return inferRep
	}

	out := os.Stdout
	for _, exp := range args {
		fmt.Fprintln(out, strings.Repeat("=", 72))
		switch exp {
		case "fig3":
			core.WriteFig3(out, profile, *seed)
		case "table2":
			sw.WriteTable2(out)
		case "fig4":
			sw.WriteFig4(out)
		case "table3":
			sw.WriteTable3(out)
		case "fig5":
			sw.WriteFig5(out)
		case "table4":
			sw.WriteTable4(out)
		case "fig6":
			sw.WriteFig6(out)
		case "fig7":
			sw.WriteFig7(out)
		case "fig8":
			sw.WriteFig8(out)
		case "fig9":
			writeFig9(out, profile, *seed)
		case "fig10", "fig13":
			writeBoundaries(out, profile, *seed, exp)
		case "fig11":
			sw.WriteFamilyCDFs(out, "CIRCLE")
			sw.WriteFamilyCDFs(out, "LINEAR")
		case "fig12", "infer":
			core.WriteInference(out, inference())
		case "table5":
			writeTable5(out)
		case "timecost":
			sw.WriteTimeCost(out)
		case "domains":
			sw.WriteDomainBreakdown(out)
		case "auc":
			rows, err := core.AUCStudy(profile, *seed, *maxDatasets)
			if err != nil {
				fatal(err)
			}
			core.WriteAUCStudy(out, rows)
		case "robust":
			pts, err := core.NoiseRobustness(profile, *seed, nil)
			if err != nil {
				fatal(err)
			}
			core.WriteNoiseRobustness(out, pts)
		case "csv":
			if err := sw.WriteMeasurementsCSV(out); err != nil {
				fatal(err)
			}
		case "table6", "fig14":
			for _, p := range []string{"google", "abm"} {
				cmp, err := sw.CompareNaive(p, inference())
				if err != nil {
					fatal(err)
				}
				switchBest, err := sw.SwitchIsBestCount(p, inference())
				if err != nil {
					fatal(err)
				}
				core.WriteNaive(out, cmp, switchBest)
			}
		default:
			fatal(fmt.Errorf("unknown experiment %q", exp))
		}
	}

	// Where the run's time went: per-stage latency quantiles (upload,
	// featsel, preprocess, fit, predict, score, ...), retry totals and the
	// rest of the default registry, on stderr so experiment output stays
	// pipeable.
	if *telemetrySummary {
		fmt.Fprintln(os.Stderr, strings.Repeat("=", 72))
		// Stamp the environment first so any number below is attributable
		// to the toolchain and machine that produced it.
		fmt.Fprintf(os.Stderr, "env: %s\n", telemetry.Fingerprint())
		telemetry.SetBuildInfo(telemetry.Default())
		telemetry.WriteDefaultSummary(os.Stderr)
	}
	if *traceOut != "" {
		if err := writeTraces(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "traces written to %s\n", *traceOut)
	}
	if prof != nil {
		if _, err := prof.CaptureNow("end-of-run", profiling.ReasonManual, nil); err != nil {
			fmt.Fprintf(os.Stderr, "mlaas-bench: end-of-run profile capture: %v\n", err)
		}
		prof.Stop()
		fmt.Fprintf(os.Stderr, "profile bundles in %s (inspect with mlaas-profile -dir %s list)\n", *profileDir, *profileDir)
	}
}

// writeTraces exports the default registry's retained traces as JSONL.
func writeTraces(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteTraceJSONL(f, telemetry.Default().Traces().Snapshot()); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func datasetCount(limit int) int {
	if limit > 0 && limit < 119 {
		return limit
	}
	return 119
}

// writeFig9 renders the CIRCLE and LINEAR probe datasets as ASCII scatter
// plots (the paper's Figure 9 visualizations).
func writeFig9(out *os.File, profile synth.Profile, seed uint64) {
	circle, linear := core.ProbeDatasets(profile, seed)
	fmt.Fprintln(out, "Figure 9(a): CIRCLE — samples by class")
	fmt.Fprint(out, scatterASCII(circle.X, circle.Y, 30))
	fmt.Fprintln(out, "Figure 9(b): LINEAR — samples by class")
	fmt.Fprint(out, scatterASCII(linear.X, linear.Y, 30))
}

// scatterASCII rasterizes 2-D samples: '.' class 0, '#' class 1, ' ' empty.
func scatterASCII(x [][]float64, y []int, steps int) string {
	minX, maxX := x[0][0], x[0][0]
	minY, maxY := x[0][1], x[0][1]
	for _, row := range x {
		if row[0] < minX {
			minX = row[0]
		}
		if row[0] > maxX {
			maxX = row[0]
		}
		if row[1] < minY {
			minY = row[1]
		}
		if row[1] > maxY {
			maxY = row[1]
		}
	}
	grid := make([][]byte, steps)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", steps))
	}
	for i, row := range x {
		cx := int(float64(steps-1) * (row[0] - minX) / (maxX - minX + 1e-12))
		cy := int(float64(steps-1) * (row[1] - minY) / (maxY - minY + 1e-12))
		ch := byte('.')
		if y[i] == 1 {
			ch = '#'
		}
		grid[steps-1-cy][cx] = ch
	}
	var sb strings.Builder
	for _, line := range grid {
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// writeBoundaries renders Figure 10 (Google/ABM on CIRCLE and LINEAR) or
// Figure 13 (Amazon on CIRCLE).
func writeBoundaries(out *os.File, profile synth.Profile, seed uint64, exp string) {
	circle, linear := core.ProbeDatasets(profile, seed)
	type probe struct {
		platform string
		ds       string
	}
	var probes []probe
	if exp == "fig10" {
		probes = []probe{
			{"google", "CIRCLE"}, {"google", "LINEAR"},
			{"abm", "CIRCLE"}, {"abm", "LINEAR"},
		}
	} else {
		probes = []probe{{"amazon", "CIRCLE"}}
	}
	for _, pr := range probes {
		p, err := platforms.New(pr.platform)
		if err != nil {
			fatal(err)
		}
		ds := circle
		if pr.ds == "LINEAR" {
			ds = linear
		}
		cfg := pipeline.Config{}
		if p.BaselineClassifier() != "" {
			c, err := p.Surface().DefaultConfig(p.BaselineClassifier())
			if err != nil {
				fatal(err)
			}
			cfg = c
		}
		bm, err := core.ExtractBoundary(p, ds, cfg, 40, seed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "%s decision boundary on %s (linearity %.3f)\n", pr.platform, pr.ds, bm.LinearityScore())
		fmt.Fprint(out, bm.ASCII())
	}
}

// writeTable5 prints the linear/non-linear classifier family split.
func writeTable5(out *os.File) {
	linear, nonLinear := classifiers.LinearFamily()
	label := func(names []string) string {
		var parts []string
		for _, n := range names {
			info, err := classifiers.Lookup(n)
			if err != nil {
				continue
			}
			parts = append(parts, info.Label)
		}
		return strings.Join(parts, ", ")
	}
	fmt.Fprintln(out, "Table 5: classifier families")
	fmt.Fprintf(out, "  Linear:     %s\n", label(linear))
	fmt.Fprintf(out, "  Non-linear: %s\n", label(nonLinear))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlaas-bench:", err)
	os.Exit(1)
}
