// Command mlaas-trace analyses trace JSONL exported by mlaas-bench or
// mlaas-loadgen (-trace-out) or captured from a server's /debug/traces.
//
// Usage:
//
//	mlaas-trace [-top 3] [-flame 15] traces.jsonl [more.jsonl ...]
//
// Fragments of one distributed trace — the client's rpc tree and the server
// handler trees it caused — share a trace id and are stitched back into a
// single tree before analysis (the server root's parent id names the client
// rpc span that issued the request). The report has four sections:
//
//	stages    per-span-name latency breakdown (count/total/mean/p50/p95/max)
//	platforms per-platform rollup of root traces
//	critical  the dominant-child chain through the slowest traces
//	flame     self-time by span path, widest first
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mlaasbench/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlaas-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 3, "how many slowest traces get a critical-path breakdown")
	flame := fs.Int("flame", 15, "how many paths the self-time summary lists")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: mlaas-trace [-top N] [-flame N] traces.jsonl [more.jsonl ...]")
		return 2
	}
	var frags []telemetry.TraceData
	for _, path := range fs.Args() {
		ts, err := loadTraceFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "mlaas-trace: %v\n", err)
			return 1
		}
		frags = append(frags, ts...)
	}
	if len(frags) == 0 {
		fmt.Fprintln(stderr, "mlaas-trace: no traces in input")
		return 1
	}
	traces := mergeFragments(frags)
	fmt.Fprintf(stdout, "%d traces (%d fragments) from %d file(s)\n\n", len(traces), len(frags), fs.NArg())
	printStages(stdout, stageBreakdown(traces))
	printPlatforms(stdout, platformRollup(traces))
	printCriticalPaths(stdout, traces, *top)
	printFlame(stdout, selfTimeByPath(traces), *flame)
	return 0
}

// loadTraceFile reads one trace JSONL file with line-accurate diagnostics.
// Three failure shapes that used to surface as a bare "unexpected EOF" or a
// silent empty report each get a distinct, actionable error: a file with no
// trace lines at all, a final record cut off mid-line (interrupted export),
// and a line that parses as JSON but is not a trace record.
func loadTraceFile(path string) ([]telemetry.TraceData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("%s: empty input: no trace JSONL lines (export some with mlaas-bench/mlaas-loadgen -trace-out, or GET /debug/traces from a server)", path)
	}
	lines := bytes.Split(data, []byte("\n"))
	var out []telemetry.TraceData
	for i, line := range lines {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var t telemetry.TraceData
		if err := json.Unmarshal(trimmed, &t); err != nil {
			if i == len(lines)-1 && !bytes.HasSuffix(data, []byte("\n")) {
				return nil, fmt.Errorf("%s:%d: truncated trace record — the file ends mid-line, so the export was probably interrupted; re-export or delete the partial last line (parse error: %v)", path, i+1, err)
			}
			return nil, fmt.Errorf("%s:%d: bad trace JSONL: %v", path, i+1, err)
		}
		if t.TraceID == "" {
			return nil, fmt.Errorf("%s:%d: JSON object has no trace_id; this is not a trace JSONL export", path, i+1)
		}
		out = append(out, t)
	}
	return out, nil
}

// node is the mutable form of SpanData used while stitching fragments.
type node struct {
	telemetry.SpanData
	kids []*node
}

func toNode(sd telemetry.SpanData, index map[string]*node) *node {
	n := &node{SpanData: sd}
	n.SpanData.Children = nil
	index[sd.SpanID] = n
	for _, c := range sd.Children {
		n.kids = append(n.kids, toNode(c, index))
	}
	return n
}

func toSpanData(n *node) telemetry.SpanData {
	sd := n.SpanData
	sd.Children = make([]telemetry.SpanData, 0, len(n.kids))
	// Children in start order so stitched server trees interleave with the
	// native children the way the request actually unfolded.
	sort.SliceStable(n.kids, func(i, j int) bool {
		return n.kids[i].StartUnixNano < n.kids[j].StartUnixNano
	})
	for _, k := range n.kids {
		sd.Children = append(sd.Children, toSpanData(k))
	}
	return sd
}

// mergeFragments groups fragments by trace id and grafts each fragment
// whose root names a parent span found in a sibling fragment under that
// parent. Fragments whose parent is missing (sampled out on the other side,
// or genuinely root) stay roots; each yields one merged trace.
func mergeFragments(frags []telemetry.TraceData) []telemetry.TraceData {
	byID := map[string][]telemetry.TraceData{}
	var order []string
	for _, f := range frags {
		if _, ok := byID[f.TraceID]; !ok {
			order = append(order, f.TraceID)
		}
		byID[f.TraceID] = append(byID[f.TraceID], f)
	}
	var out []telemetry.TraceData
	for _, id := range order {
		group := byID[id]
		index := map[string]*node{}
		roots := make([]*node, 0, len(group))
		dropped := 0
		var firstErr string
		for _, f := range group {
			roots = append(roots, toNode(f.Root, index))
			dropped += f.DroppedSpans
			if firstErr == "" {
				firstErr = f.Error
			}
		}
		var unparented []*node
		for _, r := range roots {
			if p, ok := index[r.ParentID]; ok && r.ParentID != "" {
				p.kids = append(p.kids, r)
			} else {
				unparented = append(unparented, r)
			}
		}
		for _, r := range unparented {
			sd := toSpanData(r)
			out = append(out, telemetry.TraceData{
				TraceID:         id,
				DurationSeconds: sd.DurationSeconds,
				Spans:           countSpans(sd),
				DroppedSpans:    dropped,
				Error:           firstErr,
				Root:            sd,
			})
		}
	}
	return out
}

func countSpans(sd telemetry.SpanData) int {
	n := 1
	for _, c := range sd.Children {
		n += countSpans(c)
	}
	return n
}

func walk(sd telemetry.SpanData, fn func(telemetry.SpanData)) {
	fn(sd)
	for _, c := range sd.Children {
		walk(c, fn)
	}
}

// stageStat aggregates every span sharing one name across all traces.
type stageStat struct {
	Name  string
	Count int
	Total float64
	Max   float64
	durs  []float64
}

func stageBreakdown(traces []telemetry.TraceData) []stageStat {
	byName := map[string]*stageStat{}
	for _, t := range traces {
		walk(t.Root, func(sd telemetry.SpanData) {
			s := byName[sd.Name]
			if s == nil {
				s = &stageStat{Name: sd.Name}
				byName[sd.Name] = s
			}
			s.Count++
			s.Total += sd.DurationSeconds
			if sd.DurationSeconds > s.Max {
				s.Max = sd.DurationSeconds
			}
			s.durs = append(s.durs, sd.DurationSeconds)
		})
	}
	out := make([]stageStat, 0, len(byName))
	for _, s := range byName {
		sort.Float64s(s.durs)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

func (s stageStat) quantile(q float64) float64 {
	if len(s.durs) == 0 {
		return 0
	}
	return s.durs[int(q*float64(len(s.durs)-1))]
}

// platStat rolls whole traces up by the platform attr on (or under) the root.
type platStat struct {
	Platform string
	Traces   int
	Total    float64
	Errors   int
}

func tracePlatform(t telemetry.TraceData) string {
	plat := ""
	walk(t.Root, func(sd telemetry.SpanData) {
		if plat == "" && sd.Attrs["platform"] != "" {
			plat = sd.Attrs["platform"]
		}
	})
	if plat == "" {
		plat = "(none)"
	}
	return plat
}

func platformRollup(traces []telemetry.TraceData) []platStat {
	byPlat := map[string]*platStat{}
	for _, t := range traces {
		plat := tracePlatform(t)
		s := byPlat[plat]
		if s == nil {
			s = &platStat{Platform: plat}
			byPlat[plat] = s
		}
		s.Traces++
		s.Total += t.DurationSeconds
		if t.Error != "" {
			s.Errors++
		}
	}
	out := make([]platStat, 0, len(byPlat))
	for _, s := range byPlat {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// criticalPath walks the dominant-child chain from the root: at each level
// it descends into the child with the largest duration — the span that
// gates the trace's latency.
func criticalPath(t telemetry.TraceData) []telemetry.SpanData {
	var path []telemetry.SpanData
	sd := t.Root
	for {
		path = append(path, sd)
		if len(sd.Children) == 0 {
			return path
		}
		best := sd.Children[0]
		for _, c := range sd.Children[1:] {
			if c.DurationSeconds > best.DurationSeconds {
				best = c
			}
		}
		sd = best
	}
}

func selfTime(sd telemetry.SpanData) float64 {
	self := sd.DurationSeconds
	for _, c := range sd.Children {
		self -= c.DurationSeconds
	}
	if self < 0 {
		return 0
	}
	return self
}

// pathStat accumulates self time per slash path ("measure/rpc:train/...").
type pathStat struct {
	Path  string
	Count int
	Self  float64
}

func selfTimeByPath(traces []telemetry.TraceData) []pathStat {
	byPath := map[string]*pathStat{}
	for _, t := range traces {
		walk(t.Root, func(sd telemetry.SpanData) {
			key := sd.Path
			if key == "" {
				key = sd.Name
			}
			s := byPath[key]
			if s == nil {
				s = &pathStat{Path: key}
				byPath[key] = s
			}
			s.Count++
			s.Self += selfTime(sd)
		})
	}
	out := make([]pathStat, 0, len(byPath))
	for _, s := range byPath {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Self > out[j].Self })
	return out
}

func ms(sec float64) float64 { return sec * 1000 }

func printStages(w io.Writer, stages []stageStat) {
	fmt.Fprintln(w, "== stages (by total time) ==")
	fmt.Fprintf(w, "%-22s %8s %10s %9s %9s %9s %9s\n", "span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "max_ms")
	for _, s := range stages {
		fmt.Fprintf(w, "%-22s %8d %10.2f %9.3f %9.3f %9.3f %9.3f\n",
			s.Name, s.Count, ms(s.Total), ms(s.Total)/float64(s.Count),
			ms(s.quantile(0.50)), ms(s.quantile(0.95)), ms(s.Max))
	}
	fmt.Fprintln(w)
}

func printPlatforms(w io.Writer, plats []platStat) {
	fmt.Fprintln(w, "== platforms ==")
	fmt.Fprintf(w, "%-14s %8s %10s %9s %7s\n", "platform", "traces", "total_ms", "mean_ms", "errors")
	for _, p := range plats {
		fmt.Fprintf(w, "%-14s %8d %10.2f %9.3f %7d\n",
			p.Platform, p.Traces, ms(p.Total), ms(p.Total)/float64(p.Traces), p.Errors)
	}
	fmt.Fprintln(w)
}

func printCriticalPaths(w io.Writer, traces []telemetry.TraceData, top int) {
	sorted := append([]telemetry.TraceData(nil), traces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DurationSeconds > sorted[j].DurationSeconds })
	if top > len(sorted) {
		top = len(sorted)
	}
	fmt.Fprintf(w, "== critical path: %d slowest trace(s) ==\n", top)
	for _, t := range sorted[:top] {
		fmt.Fprintf(w, "trace %s  %.2fms  %d spans", t.TraceID, ms(t.DurationSeconds), t.Spans)
		if t.Error != "" {
			fmt.Fprintf(w, "  ERROR %s", t.Error)
		}
		fmt.Fprintln(w)
		for depth, sd := range criticalPath(t) {
			pct := 0.0
			if t.DurationSeconds > 0 {
				pct = 100 * sd.DurationSeconds / t.DurationSeconds
			}
			fmt.Fprintf(w, "  %s%-*s %9.3fms  self %9.3fms  %5.1f%%\n",
				strings.Repeat("  ", depth), 24-2*depth, sd.Name,
				ms(sd.DurationSeconds), ms(selfTime(sd)), pct)
		}
	}
	fmt.Fprintln(w)
}

func printFlame(w io.Writer, paths []pathStat, limit int) {
	fmt.Fprintln(w, "== self time by path ==")
	if limit > len(paths) {
		limit = len(paths)
	}
	for _, p := range paths[:limit] {
		fmt.Fprintf(w, "%10.2fms %6d× %s\n", ms(p.Self), p.Count, p.Path)
	}
}
