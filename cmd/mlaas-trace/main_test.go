package main

import (
	"bytes"
	"testing"

	"mlaasbench/internal/telemetry"
)

// fragments builds a client fragment plus a server fragment of the same
// distributed trace: the server's http:train root names the client's
// rpc:train span as its parent, exactly what -trace-out files contain.
func fragments() []telemetry.TraceData {
	client := telemetry.TraceData{
		TraceID:         "0af7651916cd43dd8448eb211c80319c",
		DurationSeconds: 0.030,
		Spans:           2,
		Root: telemetry.SpanData{
			SpanID: "b7ad6b7169203331", Name: "measure", Path: "measure",
			StartUnixNano: 1000, DurationSeconds: 0.030,
			Attrs: map[string]string{"platform": "amazon", "dataset": "tr"},
			Children: []telemetry.SpanData{{
				SpanID: "00f067aa0ba902b7", ParentID: "b7ad6b7169203331",
				Name: "rpc:train", Path: "measure/rpc:train",
				StartUnixNano: 2000, DurationSeconds: 0.025,
			}},
		},
	}
	server := telemetry.TraceData{
		TraceID:         "0af7651916cd43dd8448eb211c80319c",
		DurationSeconds: 0.020,
		Spans:           2,
		Root: telemetry.SpanData{
			SpanID: "9d3c0e8f4a1b6c2d", ParentID: "00f067aa0ba902b7",
			Name: "http:train", Path: "http:train",
			StartUnixNano: 3000, DurationSeconds: 0.020,
			Children: []telemetry.SpanData{{
				SpanID: "1a2b3c4d5e6f7a8b", ParentID: "9d3c0e8f4a1b6c2d",
				Name: "model_fit", Path: "http:train/model_fit",
				StartUnixNano: 4000, DurationSeconds: 0.018,
			}},
		},
	}
	return []telemetry.TraceData{client, server}
}

func TestMergeFragmentsStitchesAcrossProcesses(t *testing.T) {
	merged := mergeFragments(fragments())
	if len(merged) != 1 {
		t.Fatalf("merged into %d traces, want 1", len(merged))
	}
	m := merged[0]
	if m.Spans != 4 {
		t.Errorf("merged trace has %d spans, want 4", m.Spans)
	}
	if m.Root.Name != "measure" {
		t.Errorf("merged root %q, want the client measure span", m.Root.Name)
	}
	rpc := m.Root.Children[0]
	if rpc.Name != "rpc:train" || len(rpc.Children) != 1 || rpc.Children[0].Name != "http:train" {
		t.Errorf("server fragment not grafted under rpc:train: %+v", rpc)
	}
}

func TestMergeFragmentsKeepsOrphanRoots(t *testing.T) {
	frags := fragments()[1:] // server fragment only; client side sampled out
	merged := mergeFragments(frags)
	if len(merged) != 1 || merged[0].Root.Name != "http:train" {
		t.Fatalf("orphan fragment should survive as its own trace: %+v", merged)
	}
}

func TestAnalysisSections(t *testing.T) {
	merged := mergeFragments(fragments())

	stages := stageBreakdown(merged)
	byName := map[string]stageStat{}
	for _, s := range stages {
		byName[s.Name] = s
	}
	if byName["model_fit"].Count != 1 || byName["model_fit"].Total != 0.018 {
		t.Errorf("model_fit stage stat wrong: %+v", byName["model_fit"])
	}
	if stages[0].Name != "measure" {
		t.Errorf("stages not sorted by total: first is %s", stages[0].Name)
	}

	plats := platformRollup(merged)
	if len(plats) != 1 || plats[0].Platform != "amazon" || plats[0].Traces != 1 {
		t.Errorf("platform rollup wrong: %+v", plats)
	}

	cp := criticalPath(merged[0])
	want := []string{"measure", "rpc:train", "http:train", "model_fit"}
	if len(cp) != len(want) {
		t.Fatalf("critical path has %d hops, want %d", len(cp), len(want))
	}
	for i, sd := range cp {
		if sd.Name != want[i] {
			t.Errorf("critical path hop %d is %s, want %s", i, sd.Name, want[i])
		}
	}

	paths := selfTimeByPath(merged)
	if paths[0].Path != "http:train/model_fit" {
		t.Errorf("widest self-time path %q, want the leaf fit", paths[0].Path)
	}
}

func TestJSONLRoundTripThroughAnalysis(t *testing.T) {
	var buf bytes.Buffer
	if err := telemetry.WriteTraceJSONL(&buf, fragments()); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := telemetry.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost fragments: %d", len(back))
	}
	if merged := mergeFragments(back); len(merged) != 1 || merged[0].Spans != 4 {
		t.Fatalf("merge after round trip wrong: %+v", merged)
	}
}
