package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlaasbench/internal/telemetry"
)

// fragments builds a client fragment plus a server fragment of the same
// distributed trace: the server's http:train root names the client's
// rpc:train span as its parent, exactly what -trace-out files contain.
func fragments() []telemetry.TraceData {
	client := telemetry.TraceData{
		TraceID:         "0af7651916cd43dd8448eb211c80319c",
		DurationSeconds: 0.030,
		Spans:           2,
		Root: telemetry.SpanData{
			SpanID: "b7ad6b7169203331", Name: "measure", Path: "measure",
			StartUnixNano: 1000, DurationSeconds: 0.030,
			Attrs: map[string]string{"platform": "amazon", "dataset": "tr"},
			Children: []telemetry.SpanData{{
				SpanID: "00f067aa0ba902b7", ParentID: "b7ad6b7169203331",
				Name: "rpc:train", Path: "measure/rpc:train",
				StartUnixNano: 2000, DurationSeconds: 0.025,
			}},
		},
	}
	server := telemetry.TraceData{
		TraceID:         "0af7651916cd43dd8448eb211c80319c",
		DurationSeconds: 0.020,
		Spans:           2,
		Root: telemetry.SpanData{
			SpanID: "9d3c0e8f4a1b6c2d", ParentID: "00f067aa0ba902b7",
			Name: "http:train", Path: "http:train",
			StartUnixNano: 3000, DurationSeconds: 0.020,
			Children: []telemetry.SpanData{{
				SpanID: "1a2b3c4d5e6f7a8b", ParentID: "9d3c0e8f4a1b6c2d",
				Name: "model_fit", Path: "http:train/model_fit",
				StartUnixNano: 4000, DurationSeconds: 0.018,
			}},
		},
	}
	return []telemetry.TraceData{client, server}
}

func TestMergeFragmentsStitchesAcrossProcesses(t *testing.T) {
	merged := mergeFragments(fragments())
	if len(merged) != 1 {
		t.Fatalf("merged into %d traces, want 1", len(merged))
	}
	m := merged[0]
	if m.Spans != 4 {
		t.Errorf("merged trace has %d spans, want 4", m.Spans)
	}
	if m.Root.Name != "measure" {
		t.Errorf("merged root %q, want the client measure span", m.Root.Name)
	}
	rpc := m.Root.Children[0]
	if rpc.Name != "rpc:train" || len(rpc.Children) != 1 || rpc.Children[0].Name != "http:train" {
		t.Errorf("server fragment not grafted under rpc:train: %+v", rpc)
	}
}

func TestMergeFragmentsKeepsOrphanRoots(t *testing.T) {
	frags := fragments()[1:] // server fragment only; client side sampled out
	merged := mergeFragments(frags)
	if len(merged) != 1 || merged[0].Root.Name != "http:train" {
		t.Fatalf("orphan fragment should survive as its own trace: %+v", merged)
	}
}

func TestAnalysisSections(t *testing.T) {
	merged := mergeFragments(fragments())

	stages := stageBreakdown(merged)
	byName := map[string]stageStat{}
	for _, s := range stages {
		byName[s.Name] = s
	}
	if byName["model_fit"].Count != 1 || byName["model_fit"].Total != 0.018 {
		t.Errorf("model_fit stage stat wrong: %+v", byName["model_fit"])
	}
	if stages[0].Name != "measure" {
		t.Errorf("stages not sorted by total: first is %s", stages[0].Name)
	}

	plats := platformRollup(merged)
	if len(plats) != 1 || plats[0].Platform != "amazon" || plats[0].Traces != 1 {
		t.Errorf("platform rollup wrong: %+v", plats)
	}

	cp := criticalPath(merged[0])
	want := []string{"measure", "rpc:train", "http:train", "model_fit"}
	if len(cp) != len(want) {
		t.Fatalf("critical path has %d hops, want %d", len(cp), len(want))
	}
	for i, sd := range cp {
		if sd.Name != want[i] {
			t.Errorf("critical path hop %d is %s, want %s", i, sd.Name, want[i])
		}
	}

	paths := selfTimeByPath(merged)
	if paths[0].Path != "http:train/model_fit" {
		t.Errorf("widest self-time path %q, want the leaf fit", paths[0].Path)
	}
}

func TestJSONLRoundTripThroughAnalysis(t *testing.T) {
	var buf bytes.Buffer
	if err := telemetry.WriteTraceJSONL(&buf, fragments()); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := telemetry.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost fragments: %d", len(back))
	}
	if merged := mergeFragments(back); len(merged) != 1 || merged[0].Spans != 4 {
		t.Fatalf("merge after round trip wrong: %+v", merged)
	}
}

// traceLine marshals one minimal-but-valid trace record to a JSONL line.
func traceLine(t *testing.T, id string) string {
	t.Helper()
	td := telemetry.TraceData{
		TraceID:         id,
		DurationSeconds: 0.01,
		Spans:           1,
		Root: telemetry.SpanData{
			SpanID: "s-" + id, Name: "predict", Path: "predict",
			DurationSeconds: 0.01,
			Attrs:           map[string]string{"platform": "local"},
		},
	}
	b, err := json.Marshal(td)
	if err != nil {
		t.Fatalf("marshal trace: %v", err)
	}
	return string(b)
}

func writeInput(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunReportsTraces is the happy path: a well-formed JSONL export
// produces the four report sections on stdout and exit 0.
func TestRunReportsTraces(t *testing.T) {
	path := writeInput(t, traceLine(t, "t1")+"\n"+traceLine(t, "t2")+"\n")
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"2 traces", "== stages", "== platforms", "== critical path", "== self time"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunDiagnostics pins the failure-shape messages: each malformed input
// must fail (exit 1) with a distinct, file-and-line-accurate diagnostic
// rather than a bare "unexpected EOF" or a silently empty report.
func TestRunDiagnostics(t *testing.T) {
	valid := traceLine(t, "t1")
	cases := []struct {
		name    string
		content string
		want    []string
	}{
		{"empty file", "", []string{"empty input", "-trace-out"}},
		{"whitespace only", "\n\n  \n", []string{"empty input"}},
		{"truncated last record", valid + "\n" + valid[:len(valid)/2],
			[]string{":2:", "truncated", "interrupted"}},
		{"garbage mid-file", valid + "\n{not json}\n" + valid + "\n",
			[]string{":2:", "bad trace JSONL"}},
		{"json but not a trace", `{"foo": 1}` + "\n",
			[]string{":1:", "no trace_id"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeInput(t, tc.content)
			var out, errb bytes.Buffer
			if code := run([]string{path}, &out, &errb); code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
			}
			msg := errb.String()
			if !strings.Contains(msg, path) {
				t.Errorf("diagnostic does not name the file: %s", msg)
			}
			for _, want := range tc.want {
				if !strings.Contains(msg, want) {
					t.Errorf("diagnostic missing %q: %s", want, msg)
				}
			}
		})
	}
}

// TestRunUsage: no input files is a usage error; a missing file is a
// runtime error naming the path.
func TestRunUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("bare run exits %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("no usage line: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "nope.jsonl")}, &out, &errb); code != 1 {
		t.Fatalf("missing file exits %d, want 1", code)
	}
}

// TestTruncatedWithTrailingNewline: a bad line that is NOT the unterminated
// final line reports as malformed, not truncated — the truncation hint is
// reserved for the interrupted-export shape.
func TestTruncatedWithTrailingNewline(t *testing.T) {
	valid := traceLine(t, "t1")
	path := writeInput(t, valid[:len(valid)/2]+"\n")
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(errb.String(), "truncated") {
		t.Errorf("newline-terminated bad line misreported as truncation: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "bad trace JSONL") {
		t.Errorf("want malformed-line diagnostic: %s", errb.String())
	}
}
