package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mlaasbench/internal/perf"
)

func writeRec(t *testing.T, dir, label string, at time.Time, mean float64) {
	t.Helper()
	res := perf.Result{Name: "BenchmarkGEMM", Unit: "ns/op",
		Runs: []float64{mean * 0.99, mean, mean * 1.01}}
	res.Finalize()
	rec := &perf.Record{
		Schema: perf.SchemaVersion, Kind: perf.KindBench, Label: label,
		Time: at, Results: []perf.Result{res},
	}
	if _, err := rec.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
}

// TestCompareSelfTest is the acceptance self-test: against the same
// history, a doctored (synthetically regressed) latest entry must exit
// non-zero while an unchanged run passes, and -report-only must swallow
// the failure for CI smoke.
func TestCompareSelfTest(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

	t.Run("unchanged run passes", func(t *testing.T) {
		dir := t.TempDir()
		writeRec(t, dir, "old", base, 1000)
		writeRec(t, dir, "new", base.Add(time.Hour), 1004)
		var out, errb strings.Builder
		if code := run([]string{"compare", "-dir", dir}, &out, &errb); code != exitOK {
			t.Fatalf("exit %d, want 0\n%s%s", code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "no regressions") {
			t.Errorf("output: %s", out.String())
		}
	})

	t.Run("injected regression fails", func(t *testing.T) {
		dir := t.TempDir()
		writeRec(t, dir, "old", base, 1000)
		writeRec(t, dir, "doctored", base.Add(time.Hour), 1500) // +50%
		var out, errb strings.Builder
		if code := run([]string{"compare", "-dir", dir}, &out, &errb); code != exitRegression {
			t.Fatalf("exit %d, want %d\n%s%s", code, exitRegression, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "REGRESSION") {
			t.Errorf("output: %s", out.String())
		}
	})

	t.Run("report-only never fails", func(t *testing.T) {
		dir := t.TempDir()
		writeRec(t, dir, "old", base, 1000)
		writeRec(t, dir, "doctored", base.Add(time.Hour), 1500)
		var out, errb strings.Builder
		if code := run([]string{"compare", "-dir", dir, "-report-only"}, &out, &errb); code != exitOK {
			t.Fatalf("exit %d, want 0\n%s%s", code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "report-only") {
			t.Errorf("output: %s", out.String())
		}
	})

	t.Run("candidate against latest history", func(t *testing.T) {
		dir := t.TempDir()
		writeRec(t, dir, "committed", base, 1000)
		candDir := t.TempDir()
		writeRec(t, candDir, "cand", base.Add(time.Hour), 1800)
		var cand string
		entries, err := os.ReadDir(candDir)
		if err != nil || len(entries) != 1 {
			t.Fatal("candidate fixture")
		}
		cand = filepath.Join(candDir, entries[0].Name())
		var out, errb strings.Builder
		if code := run([]string{"compare", "-dir", dir, "-candidate", cand}, &out, &errb); code != exitRegression {
			t.Fatalf("exit %d, want %d\n%s%s", code, exitRegression, out.String(), errb.String())
		}
	})

	t.Run("too little history errors", func(t *testing.T) {
		dir := t.TempDir()
		writeRec(t, dir, "only", base, 1000)
		var out, errb strings.Builder
		if code := run([]string{"compare", "-dir", dir}, &out, &errb); code != exitErr {
			t.Fatalf("exit %d, want %d", code, exitErr)
		}
	})
}

func TestReportRendersCommittedHistoryShape(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	writeRec(t, dir, "seed", base, 32.5e9)
	writeRec(t, dir, "pr2", base.Add(time.Hour), 16.7e9)
	var out, errb strings.Builder
	if code := run([]string{"report", "-dir", dir}, &out, &errb); code != exitOK {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"BenchmarkGEMM", "seed", "pr2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"report", "-dir", dir, "-format", "json"}, &out, &errb); code != exitOK {
		t.Fatalf("json exit %d: %s", code, errb.String())
	}
	var trs []perf.Trajectory
	if err := json.Unmarshal([]byte(out.String()), &trs); err != nil || len(trs) != 1 {
		t.Fatalf("json report: %v (%d trajectories)", err, len(trs))
	}
	if len(trs[0].Points) != 2 {
		t.Errorf("trajectory points %d, want 2", len(trs[0].Points))
	}
}

// convert -> report end to end over a legacy fixture.
func TestConvertThenReport(t *testing.T) {
	tmp := t.TempDir()
	legacy := filepath.Join(tmp, "BENCH_PRX.json")
	if err := os.WriteFile(legacy, []byte(`{
	  "host": {"cpu": "Xeon", "cpus_visible": 1},
	  "runs_seconds_per_op": {"seed_engine": [32.5], "pr2_workers1": [16.7], "pr2_workers4": [16.3]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(tmp, "results")
	var out, errb strings.Builder
	code := run([]string{"convert", "-in", legacy, "-dir", dir,
		"-times", "seed=2026-08-05T11:06:11Z,pr2=2026-08-05T12:29:37Z"}, &out, &errb)
	if code != exitOK {
		t.Fatalf("convert exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"report", "-dir", dir}, &out, &errb); code != exitOK {
		t.Fatalf("report exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "BenchmarkSweepSerial") {
		t.Errorf("converted history not in report:\n%s", out.String())
	}
	// The conversion preserved the 2x win as an improvement, not a
	// regression: compare latest (pr2) vs previous (seed) must pass.
	out.Reset()
	if code := run([]string{"compare", "-dir", dir}, &out, &errb); code != exitOK {
		t.Fatalf("compare exit %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Errorf("2x win not reported as improvement:\n%s", out.String())
	}
}

func TestUnknownSubcommand(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"bogus"}, &out, &errb); code != exitErr {
		t.Fatalf("exit %d, want %d", code, exitErr)
	}
	if code := run(nil, &out, &errb); code != exitErr {
		t.Fatalf("no-args exit %d, want %d", code, exitErr)
	}
}
