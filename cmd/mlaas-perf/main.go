// Command mlaas-perf is the continuous performance observability harness:
// it collects variance-gated benchmark runs, appends them to the tracked
// history under perf/results/, detects regressions against the previous
// entry, and renders the performance trajectory.
//
// Usage:
//
//	mlaas-perf run     [-pkgs ...] [-bench regex] [-count 5] [-benchtime 300ms]
//	                   [-cv-gate 0.05] [-max-reruns 3] [-benchmem]
//	                   [-label name] [-dir perf/results] [-out file] [-no-save]
//	mlaas-perf compare [-dir perf/results] [-kind bench] [-candidate file]
//	                   [-threshold 0.10] [-noise-mult 2] [-report-only]
//	mlaas-perf report  [-dir perf/results] [-kind ""] [-format text|json|benchfmt]
//	                   [-record file]
//	mlaas-perf convert -in BENCH_PR2.json -times "seed=...,pr2=..." [-dir perf/results]
//
// run executes the selected benchmark suite -count times (each round its
// own `go test -bench` subprocess, so rounds are independent samples),
// computes per-benchmark mean and coefficient of variation, and reruns —
// alone — any benchmark whose CV exceeds -cv-gate, for up to -max-reruns
// extra rounds. The finished record lands in -dir under a
// time-sortable filename, stamped with the machine/env fingerprint
// (go version, GOOS/GOARCH, NumCPU, GOMAXPROCS, git SHA, CPU model).
//
// compare diffs the latest history entry of a kind against the previous
// one (or -candidate against the latest committed entry) and exits with
// code 2 when any shared series regressed beyond the threshold — unless
// -report-only, which always exits 0 and is what CI smoke uses.
//
// report renders every series' trajectory across the whole history;
// -format benchfmt re-emits one record in the Go benchmark data format
// for benchstat.
//
// convert is the one-time importer for the legacy BENCH_PR*.json files;
// -times assigns each produced record the commit date its measurement
// landed with.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mlaasbench/internal/perf"
)

// Default suite: the committed kernel benchmarks. Fast enough to run
// -count 5 in minutes; the 16s/op sweep benchmarks are opt-in via -bench.
const (
	defaultBench = "BenchmarkGEMM$|MLPForwardBatch|KNNPredictBatch|WireCodec|DatasetLoad|ModelDecodeMLMF"
	defaultPkgs  = "./internal/linalg,./internal/classifiers,./internal/wire,./internal/store"
)

// Exit codes: 0 clean, 1 usage or I/O error, 2 regression detected.
const (
	exitOK         = 0
	exitErr        = 1
	exitRegression = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: mlaas-perf run|compare|report|convert [flags]")
		return exitErr
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "report":
		return cmdReport(args[1:], stdout, stderr)
	case "convert":
		return cmdConvert(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "mlaas-perf: unknown subcommand %q (want run, compare, report or convert)\n", args[0])
		return exitErr
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pkgs := fs.String("pkgs", defaultPkgs, "comma-separated package patterns for go test")
	bench := fs.String("bench", defaultBench, "benchmark selection regex (-bench)")
	benchtime := fs.String("benchtime", "300ms", "per-benchmark -benchtime (e.g. 1s, 1x)")
	count := fs.Int("count", 5, "full-suite rounds (samples per benchmark)")
	cvGate := fs.Float64("cv-gate", 0.05, "coefficient-of-variation gate; noisier benchmarks rerun alone (0 disables)")
	maxReruns := fs.Int("max-reruns", 3, "extra rounds the CV gate may spend per noisy benchmark")
	benchmem := fs.Bool("benchmem", false, "collect B/op and allocs/op too")
	label := fs.String("label", "run", "short record label (shows in compare and report)")
	dir := fs.String("dir", "perf/results", "history directory the record is appended to")
	out := fs.String("out", "", "also write the record here (a path, or - for stdout)")
	noSave := fs.Bool("no-save", false, "do not append to the history directory (use with -out)")
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	runner := &perf.Runner{Logf: func(format string, a ...any) {
		fmt.Fprintf(stderr, "mlaas-perf: "+format+"\n", a...)
	}}
	rec, err := runner.Run(perf.RunConfig{
		Pkgs:      strings.Split(*pkgs, ","),
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
		Benchmem:  *benchmem,
		CVGate:    *cvGate,
		MaxReruns: *maxReruns,
		Label:     *label,
	})
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-perf: run: %v\n", err)
		return exitErr
	}
	fmt.Fprintf(stdout, "collected %d series over %d rounds (env: %s)\n", len(rec.Results), *count, rec.Env)
	for _, res := range rec.Results {
		if res.Unit != "ns/op" {
			continue
		}
		flags := ""
		if res.Reruns > 0 {
			flags = fmt.Sprintf(" (+%d cv-gate reruns)", res.Reruns)
		}
		if res.HighVariance {
			flags += " HIGH VARIANCE"
		}
		fmt.Fprintf(stdout, "  %-34s mean %12.0f ns/op  cv %4.1f%%%s\n", res.Name, res.Mean, res.CV*100, flags)
	}
	if !*noSave {
		path, err := rec.WriteFile(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "mlaas-perf: save record: %v\n", err)
			return exitErr
		}
		fmt.Fprintf(stdout, "record appended to %s\n", path)
	}
	if *out != "" {
		if err := writeRecordTo(rec, *out, stdout); err != nil {
			fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
			return exitErr
		}
	}
	return exitOK
}

// writeRecordTo writes the record as JSON to an explicit path ("-" for
// stdout) — the -no-save -out pair CI smoke uses to produce a candidate
// record without touching the committed history.
func writeRecordTo(rec *perf.Record, out string, stdout io.Writer) error {
	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "-" {
		_, err = stdout.Write(blob)
		return err
	}
	return os.WriteFile(out, blob, 0o644)
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "perf/results", "history directory")
	kind := fs.String("kind", perf.KindBench, "record kind to compare (bench or loadgen)")
	candidate := fs.String("candidate", "", "compare this record file against the latest history entry instead of latest-vs-previous")
	threshold := fs.Float64("threshold", 0.10, "relative change-for-the-worse that counts as a regression")
	noiseMult := fs.Float64("noise-mult", 2.0, "noise floor multiplier over the observed CV")
	reportOnly := fs.Bool("report-only", false, "print the diff but always exit 0 (CI smoke mode)")
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	entries, err := perf.LoadHistory(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
		return exitErr
	}
	var old, latest *perf.Record
	if *candidate != "" {
		cand, err := perf.ReadRecord(*candidate)
		if err != nil {
			fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
			return exitErr
		}
		base, ok := perf.Baseline(entries, cand.Kind, cand)
		if !ok {
			fmt.Fprintf(stderr, "mlaas-perf: no %s record in %s shares a series with the candidate; nothing to compare\n", cand.Kind, *dir)
			return exitErr
		}
		old, latest = base.Record, cand
	} else {
		prev, last, ok := perf.LatestPair(entries, *kind)
		if !ok {
			fmt.Fprintf(stderr, "mlaas-perf: need at least two %s records in %s to compare\n", *kind, *dir)
			return exitErr
		}
		old, latest = prev.Record, last.Record
	}
	cmp, err := perf.Compare(old, latest, perf.CompareOptions{Threshold: *threshold, NoiseMult: *noiseMult})
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
		return exitErr
	}
	perf.WriteComparison(stdout, cmp)
	if cmp.Regressions > 0 {
		fmt.Fprintf(stdout, "%d regression(s) beyond the %.0f%% threshold\n", cmp.Regressions, *threshold*100)
		if *reportOnly {
			fmt.Fprintln(stdout, "(report-only mode: not failing)")
			return exitOK
		}
		return exitRegression
	}
	fmt.Fprintln(stdout, "no regressions")
	return exitOK
}

func cmdReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "perf/results", "history directory")
	kind := fs.String("kind", "", "restrict to one record kind (bench or loadgen); empty shows all")
	format := fs.String("format", "text", "output format: text, json or benchfmt")
	record := fs.String("record", "", "benchfmt only: render this record file (default: latest bench entry)")
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	entries, err := perf.LoadHistory(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
		return exitErr
	}
	entries = perf.FilterKind(entries, *kind)
	switch *format {
	case "text":
		perf.WriteReport(stdout, entries)
	case "json":
		if err := perf.WriteReportJSON(stdout, entries); err != nil {
			fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
			return exitErr
		}
	case "benchfmt":
		var rec *perf.Record
		if *record != "" {
			if rec, err = perf.ReadRecord(*record); err != nil {
				fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
				return exitErr
			}
		} else {
			bench := perf.FilterKind(entries, perf.KindBench)
			if len(bench) == 0 {
				fmt.Fprintf(stderr, "mlaas-perf: no bench records in %s\n", *dir)
				return exitErr
			}
			rec = bench[len(bench)-1].Record
		}
		perf.WriteBenchFormat(stdout, rec)
	default:
		fmt.Fprintf(stderr, "mlaas-perf: unknown -format %q\n", *format)
		return exitErr
	}
	return exitOK
}

func cmdConvert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "legacy BENCH_PR*.json file to convert")
	dir := fs.String("dir", "perf/results", "history directory to write records into")
	times := fs.String("times", "", `timestamps per record arm, "arm=RFC3339,..." (e.g. "seed=2026-08-05T11:06:11Z,pr2=...")`)
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	if *in == "" {
		fmt.Fprintln(stderr, "mlaas-perf: convert needs -in")
		return exitErr
	}
	tm, err := parseTimes(*times)
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
		return exitErr
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
		return exitErr
	}
	recs, err := perf.ConvertLegacy(blob, *in, tm)
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
		return exitErr
	}
	for _, rec := range recs {
		path, err := rec.WriteFile(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "mlaas-perf: %v\n", err)
			return exitErr
		}
		fmt.Fprintf(stdout, "converted %s arm %q -> %s (%d series)\n", *in, rec.Label, path, len(rec.Results))
	}
	return exitOK
}

func parseTimes(s string) (map[string]time.Time, error) {
	out := map[string]time.Time{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		arm, stamp, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -times entry %q (want arm=RFC3339)", part)
		}
		t, err := time.Parse(time.RFC3339, stamp)
		if err != nil {
			return nil, fmt.Errorf("bad -times entry %q: %w", part, err)
		}
		out[arm] = t
	}
	return out, nil
}
