package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mlaasbench/internal/profiling"
	"mlaasbench/internal/telemetry"
)

// captureBundles writes two real bundles into dir and returns their ids.
func captureBundles(t *testing.T, dir string) (a, b string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	p, err := profiling.New(profiling.Config{
		Dir:         dir,
		CPUDuration: 10 * time.Millisecond,
		Registry:    reg,
		TraceSource: func() []telemetry.TraceSummary {
			return []telemetry.TraceSummary{{TraceID: "tr-1", Name: "predict", DurationSeconds: 0.25}}
		},
		MutexFraction: -1,
		BlockRateNs:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := p.CaptureNow("idle", profiling.ReasonManual, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := p.CaptureNow("loaded", profiling.ReasonManual, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ma.ID, mb.ID
}

func TestListShowDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	idA, idB := captureBundles(t, dir)

	var out, errb strings.Builder
	if code := run([]string{"-dir", dir, "list"}, &out, &errb); code != 0 {
		t.Fatalf("list exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), idA) || !strings.Contains(out.String(), idB) {
		t.Fatalf("list missing bundle ids:\n%s", out.String())
	}

	// show by id, by tag, and by "latest" — heap is always present.
	for _, sel := range []string{idA, "idle", "latest"} {
		out.Reset()
		errb.Reset()
		if code := run([]string{"-dir", dir, "show", "-kind", "heap", "-top", "5", sel}, &out, &errb); code != 0 {
			t.Fatalf("show %s exit %d: %s", sel, code, errb.String())
		}
		if !strings.Contains(out.String(), "bundle  ") || !strings.Contains(out.String(), "sample type") {
			t.Fatalf("show %s output:\n%s", sel, out.String())
		}
		if !strings.Contains(out.String(), "tr-1") {
			t.Fatalf("show %s lost the slow-trace ref:\n%s", sel, out.String())
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-dir", dir, "diff", "-kind", "heap", "first", "latest"}, &out, &errb); code != 0 {
		t.Fatalf("diff exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Δflat") || !strings.Contains(out.String(), idA) || !strings.Contains(out.String(), idB) {
		t.Fatalf("diff output:\n%s", out.String())
	}
}

func TestDiffAgainstRawFile(t *testing.T) {
	dir := t.TempDir()
	_, idB := captureBundles(t, dir)

	// Copy one bundle's heap profile out as a bare .pprof file.
	store, err := profiling.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	path, err := store.ProfilePath(idB, "heap")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw := filepath.Join(t.TempDir(), "external.pprof")
	if err := os.WriteFile(raw, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := run([]string{"-dir", dir, "diff", "-kind", "heap", raw, "latest"}, &out, &errb); code != 0 {
		t.Fatalf("diff exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "A="+raw) {
		t.Fatalf("raw-file label missing:\n%s", out.String())
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("bare invocation exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("no usage on stderr: %s", errb.String())
	}

	errb.Reset()
	if code := run([]string{"-dir", t.TempDir(), "show", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("show on empty store exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no bundles") {
		t.Fatalf("unhelpful empty-store error: %s", errb.String())
	}

	errb.Reset()
	dir := t.TempDir()
	captureBundles(t, dir)
	if code := run([]string{"-dir", dir, "show", "no-such-bundle"}, &out, &errb); code != 1 {
		t.Fatalf("unknown selector exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no bundle matches") {
		t.Fatalf("unhelpful selector error: %s", errb.String())
	}
}
