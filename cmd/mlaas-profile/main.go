// Command mlaas-profile inspects the on-disk profile bundles written by
// the continuous profiler (mlaas-server -profile-dir, mlaas-bench/
// mlaas-loadgen -profile-dir, or fetched from /debug/profiles).
//
// Usage:
//
//	mlaas-profile -dir profiles list
//	mlaas-profile -dir profiles show [-kind cpu] [-top 20] [-type name] <bundle>
//	mlaas-profile -dir profiles diff [-kind cpu] [-top 20] [-type name] <bundle A> <bundle B>
//
// A <bundle> selector is a bundle id, a tag (newest match wins), the
// words "latest"/"first", or a path to a raw .pprof file — so diffing a
// server bundle against a file pulled from another machine works too.
//
// diff prints the top-N flat/cum symbol deltas between A and B: run it
// between an idle capture and one taken under load to see what the load
// costs, or between bundles before and after a kernel change to see what
// the change bought.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"mlaasbench/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: mlaas-profile -dir <profile-dir> <command> [args]

commands:
  list                                      list bundles, oldest first
  show [-kind K] [-top N] [-type T] <A>     sidecar + top-N hotspots of one bundle
  diff [-kind K] [-top N] [-type T] <A> <B> top-N symbol deltas between two bundles

bundle selectors: a bundle id, a tag (newest match), "latest", "first",
or a path to a .pprof file.`)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlaas-profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "profiles", "profile bundle directory")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	var err error
	switch cmd {
	case "list":
		err = runList(stdout, *dir, rest)
	case "show":
		err = runShow(stdout, stderr, *dir, rest)
	case "diff":
		err = runDiff(stdout, stderr, *dir, rest)
	default:
		fmt.Fprintf(stderr, "mlaas-profile: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "mlaas-profile: %v\n", err)
		return 1
	}
	return 0
}

func runList(w io.Writer, dir string, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("list takes no arguments")
	}
	store, err := profiling.OpenStore(dir, 0)
	if err != nil {
		return err
	}
	metas, err := store.List()
	if err != nil {
		return err
	}
	if len(metas) == 0 {
		fmt.Fprintf(w, "no bundles in %s\n", dir)
		return nil
	}
	fmt.Fprintf(w, "%-42s %-8s %-20s %8s %6s %6s %s\n", "id", "reason", "start", "dur", "profs", "traces", "slo")
	for _, m := range metas {
		fmt.Fprintf(w, "%-42s %-8s %-20s %8s %6d %6d %s\n",
			m.ID, m.Reason, m.Start.Format("2006-01-02T15:04:05Z"),
			m.End.Sub(m.Start).Round(time.Millisecond),
			len(m.Profiles), len(m.SlowTraces), sloSummary(m))
	}
	return nil
}

// sloSummary renders a bundle's SLO state one-line: breached SLOs with
// their worst burn rate, or "-" when none was recorded.
func sloSummary(m profiling.Meta) string {
	var parts []string
	for _, s := range m.SLO {
		if !s.Breached {
			continue
		}
		worst := s.LatencyBurnRate
		if s.ErrorBurnRate > worst {
			worst = s.ErrorBurnRate
		}
		parts = append(parts, fmt.Sprintf("%s!burn=%.1f", s.Name, worst))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// reportFlags are the shared show/diff options.
type reportFlags struct {
	kind       string
	top        int
	sampleType string
}

func parseReportFlags(name string, stderr io.Writer, args []string) (reportFlags, []string, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	rf := reportFlags{}
	fs.StringVar(&rf.kind, "kind", "cpu", "profile kind (cpu, heap, mutex, block, goroutine)")
	fs.IntVar(&rf.top, "top", 20, "how many symbols to print")
	fs.StringVar(&rf.sampleType, "type", "", "sample-type column (default: the profile's default)")
	// Re-enter Parse after each positional so flags may come before,
	// after, or between bundle selectors ("diff first latest -top 5").
	var rest []string
	for {
		if err := fs.Parse(args); err != nil {
			return rf, nil, err
		}
		if fs.NArg() == 0 {
			return rf, rest, nil
		}
		rest = append(rest, fs.Arg(0))
		args = fs.Args()[1:]
	}
}

func runShow(w io.Writer, stderr io.Writer, dir string, args []string) error {
	rf, rest, err := parseReportFlags("show", stderr, args)
	if err != nil {
		return err
	}
	if len(rest) != 1 {
		return fmt.Errorf("show needs exactly one bundle selector")
	}
	prof, meta, err := resolve(dir, rest[0], rf.kind)
	if err != nil {
		return err
	}
	if meta != nil {
		printMeta(w, *meta)
	}
	idx := prof.DefaultValueIndex()
	if rf.sampleType != "" {
		if idx = prof.ValueIndex(rf.sampleType); idx < 0 {
			return fmt.Errorf("profile has no sample type %q", rf.sampleType)
		}
	}
	profiling.WriteTop(w, prof, idx, rf.top)
	return nil
}

func printMeta(w io.Writer, m profiling.Meta) {
	fmt.Fprintf(w, "bundle  %s\n", m.ID)
	fmt.Fprintf(w, "reason  %s  tag %s\n", m.Reason, m.Tag)
	fmt.Fprintf(w, "window  %s .. %s (%s)\n", m.Start.Format(time.RFC3339), m.End.Format(time.RFC3339), m.End.Sub(m.Start).Round(time.Millisecond))
	fmt.Fprintf(w, "env     %s\n", m.Env.String())
	fmt.Fprintf(w, "health  %d goroutines, heap %s, %d GCs\n",
		m.Health.Goroutines, profiling.FormatValue(int64(m.Health.HeapInuse), "bytes"), m.Health.GCCycles)
	for _, s := range m.SLO {
		state := "ok"
		if s.Breached {
			state = "BREACHED"
		}
		fmt.Fprintf(w, "slo     %s %s  latency burn %.2f  error burn %.2f  queue %d\n",
			s.Name, state, s.LatencyBurnRate, s.ErrorBurnRate, s.QueueDepth)
	}
	for _, tr := range m.SlowTraces {
		line := fmt.Sprintf("trace   %s %s %.3fs", tr.TraceID, tr.Name, tr.DurationSeconds)
		if tr.Error != "" {
			line += "  ERROR " + tr.Error
		}
		fmt.Fprintln(w, line)
	}
	for _, kv := range sortedAttrs(m.Attrs) {
		fmt.Fprintf(w, "attr    %s\n", kv)
	}
	fmt.Fprintln(w)
}

// sortedAttrs renders attrs deterministically.
func sortedAttrs(attrs map[string]string) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%s", k, attrs[k]))
	}
	return out
}

func runDiff(w io.Writer, stderr io.Writer, dir string, args []string) error {
	rf, rest, err := parseReportFlags("diff", stderr, args)
	if err != nil {
		return err
	}
	if len(rest) != 2 {
		return fmt.Errorf("diff needs exactly two bundle selectors (A B)")
	}
	profA, metaA, err := resolve(dir, rest[0], rf.kind)
	if err != nil {
		return fmt.Errorf("A (%s): %w", rest[0], err)
	}
	profB, metaB, err := resolve(dir, rest[1], rf.kind)
	if err != nil {
		return fmt.Errorf("B (%s): %w", rest[1], err)
	}
	deltas, err := profiling.Diff(profA, profB, rf.sampleType)
	if err != nil {
		return err
	}
	label := func(m *profiling.Meta, sel string) string {
		if m != nil {
			return m.ID
		}
		return sel
	}
	fmt.Fprintf(w, "diff %s: A=%s B=%s (Δ = B - A)\n", rf.kind, label(metaA, rest[0]), label(metaB, rest[1]))
	idx := profB.DefaultValueIndex()
	if rf.sampleType != "" {
		idx = profB.ValueIndex(rf.sampleType)
	}
	unit := ""
	if idx >= 0 && idx < len(profB.SampleTypes) {
		unit = profB.SampleTypes[idx].Unit
	}
	profiling.WriteDiff(w, deltas, unit, rf.top)
	return nil
}

// resolve turns a selector into a parsed profile (+ sidecar when the
// selector named a bundle rather than a raw file).
func resolve(dir, sel, kind string) (*profiling.Profile, *profiling.Meta, error) {
	// A path to an existing file wins: raw pprof files need no store.
	if st, err := os.Stat(sel); err == nil && !st.IsDir() {
		blob, err := os.ReadFile(sel)
		if err != nil {
			return nil, nil, err
		}
		prof, err := profiling.ParseProfile(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", sel, err)
		}
		return prof, nil, nil
	}
	store, err := profiling.OpenStore(dir, 0)
	if err != nil {
		return nil, nil, err
	}
	meta, err := findBundle(store, sel)
	if err != nil {
		return nil, nil, err
	}
	prof, err := store.Profile(meta.ID, kind)
	if err != nil {
		return nil, nil, err
	}
	return prof, &meta, nil
}

// findBundle resolves "latest"/"first", an exact id, or a tag (newest
// match wins, so "slo-predict-p99" picks the most recent trigger).
func findBundle(store *profiling.Store, sel string) (profiling.Meta, error) {
	metas, err := store.List()
	if err != nil {
		return profiling.Meta{}, err
	}
	if len(metas) == 0 {
		return profiling.Meta{}, fmt.Errorf("no bundles in %s", store.Dir())
	}
	switch sel {
	case "latest":
		return metas[len(metas)-1], nil
	case "first":
		return metas[0], nil
	}
	for _, m := range metas {
		if m.ID == sel {
			return m, nil
		}
	}
	for i := len(metas) - 1; i >= 0; i-- {
		if metas[i].Tag == sel || strings.Contains(metas[i].ID, sel) {
			return metas[i], nil
		}
	}
	return profiling.Meta{}, fmt.Errorf("no bundle matches %q (try: mlaas-profile -dir %s list)", sel, store.Dir())
}
