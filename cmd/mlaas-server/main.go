// Command mlaas-server hosts the simulated MLaaS platforms over HTTP.
//
// Usage:
//
//	mlaas-server [-addr :8080] [-quiet] [-pprof 127.0.0.1:6060] [-model-cache 128]
//
// The API mirrors the 2016-era services the paper measured:
//
//	GET  /v1/platforms
//	GET  /v1/platforms/{platform}/surface
//	POST /v1/platforms/{platform}/datasets          (JSON or text/csv)
//	POST /v1/platforms/{platform}/models
//	POST /v1/platforms/{platform}/models/{id}/predictions
//
// Observability endpoints ride on the same listener:
//
//	GET /metrics        Prometheus text exposition
//	GET /metrics.json   snapshot with p50/p95/p99 per histogram
//	GET /healthz        liveness + uptime
//
// -pprof mounts net/http/pprof on a separate (private) listener so
// profiling is never exposed on the public API address.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"time"

	"mlaasbench/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "suppress request logging")
	pprofAddr := flag.String("pprof", "", "mount net/http/pprof on this private address (e.g. 127.0.0.1:6060); empty disables")
	modelCache := flag.Int("model-cache", service.DefaultModelCacheModels,
		"max fitted models kept resident (LRU); 0 disables the cache and refits per predict")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(logf).WithModelCache(*modelCache).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("mlaas-server listening on %s (metrics at /metrics, health at /healthz)", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

// servePprof exposes the standard pprof handlers on their own mux and
// listener, keeping the profiling surface off the API address.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("pprof serve: %v", err)
		return
	}
	log.Printf("pprof listening on %s/debug/pprof/", ln.Addr())
	pprofSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := pprofSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pprof serve: %v", err)
	}
}
