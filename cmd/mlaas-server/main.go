// Command mlaas-server hosts the simulated MLaaS platforms over HTTP.
//
// Usage:
//
//	mlaas-server [-addr :8080] [-quiet] [-pprof 127.0.0.1:6060] [-model-cache 128]
//	             [-predict-shards 0] [-admit-concurrency 0] [-admit-queue 64]
//	             [-store-dir artifacts/] [-serve-budget 0] [-log-format text|json]
//	             [-log-level debug|info|warn|error] [-slow-request 250ms]
//	             [-health-interval 5s]
//	             [-profile-dir profiles/] [-profile-interval 1m] [-profile-cpu 1s]
//	             [-profile-max 32] [-slo-latency 50ms] [-slo-target 0.99]
//	             [-slo-error-target 0.999] [-slo-window 1m] [-slo-burn 1]
//	             [-slo-queue-depth 32] [-slo-interval 5s]
//
// -profile-dir turns on the continuous profiler: every -profile-interval
// it captures CPU/heap/mutex/block/goroutine profiles into a bounded
// on-disk ring of bundles, each with a JSON sidecar carrying the env
// fingerprint, a runtime health snapshot and the slowest retained traces
// of the window. The -slo-* flags add a watchdog that computes rolling
// burn rates over the predict route's latency/error metrics (and the
// admission queue depth) and triggers an immediate tagged capture on
// breach. Inspect bundles with mlaas-profile, or fetch them remotely from
// /debug/profiles.
//
// -store-dir attaches a durable artifact store (MLMF files) beneath the
// model cache: every fitted model is persisted, evicted models demote to
// disk instead of dropping, and the cache warms from the directory at boot,
// so a restarted server serves its first predictions as pure forward passes
// with zero refits (store counters are on /metrics).
//
// -predict-shards splits each predict request's forward pass across that
// many row shards (0 = one per CPU, 1 = serial). Predictions are
// byte-identical at any setting; only latency changes.
//
// -admit-concurrency bounds how many predict requests execute at once;
// -admit-queue bounds how many more may wait for a slot. Load beyond both
// is shed immediately with 503 + Retry-After so goodput stays flat past
// saturation instead of collapsing (admission counters are on /metrics).
//
// The predict endpoint speaks two codecs, negotiated per request: the
// default JSON body, and the binary frame format in internal/wire
// (Content-Type/Accept: application/x-mlaas-frames) — raw little-endian
// float64 rows in, int64 labels out, byte-identical predictions across
// codecs. See the README "Wire protocol" section.
//
// The API mirrors the 2016-era services the paper measured:
//
//	GET  /v1/platforms
//	GET  /v1/platforms/{platform}/surface
//	POST /v1/platforms/{platform}/datasets          (JSON or text/csv)
//	POST /v1/platforms/{platform}/models
//	POST /v1/platforms/{platform}/models/{id}/predictions
//
// Observability endpoints ride on the same listener:
//
//	GET /metrics           Prometheus text exposition
//	GET /metrics.json      snapshot with p50/p95/p99 per histogram
//	GET /debug/traces      flight-recorder index (retained trace summaries)
//	GET /debug/traces/{id} one retained trace as its full span tree
//	GET /debug/profiles              profile bundle index (sidecars)
//	GET /debug/profiles/{id}         one bundle's sidecar
//	GET /debug/profiles/{id}/{kind}  raw .pprof (cpu, heap, mutex, block, goroutine)
//	GET /healthz           liveness + uptime + build/env fingerprint +
//	                       admission queue depth + disk-tier counters
//
// /metrics additionally carries mlaas_build_info (constant-1 gauge whose
// labels identify go version, GOMAXPROCS, NumCPU and git SHA) and, when
// -health-interval > 0, a runtime health sampler: goroutine count, heap
// in-use, allocation rate, GC cycle count, GC pause histogram and a
// scheduler-latency proxy (timer overshoot on a 1ms sleep probe).
//
// Every request logs one structured record (log/slog) stamped with its
// request and trace ids; -log-level debug shows them all, and requests
// slower than -slow-request escalate to Warn at any level.
//
// -pprof mounts net/http/pprof on a separate (private) listener so
// profiling is never exposed on the public API address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"time"

	"mlaasbench/internal/linalg"
	"mlaasbench/internal/profiling"
	"mlaasbench/internal/service"
	"mlaasbench/internal/store"
	"mlaasbench/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "suppress request logging")
	pprofAddr := flag.String("pprof", "", "mount net/http/pprof on this private address (e.g. 127.0.0.1:6060); empty disables")
	modelCache := flag.Int("model-cache", service.DefaultModelCacheModels,
		"max fitted models kept resident (LRU); 0 disables the cache and refits per predict")
	predictShards := flag.Int("predict-shards", 0,
		"row shards per predict request's forward pass (0 = one per CPU, 1 = serial); predictions are byte-identical at any setting")
	logFormat := flag.String("log-format", "text", "structured request log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum structured log level: debug, info, warn or error")
	slowReq := flag.Duration("slow-request", 250*time.Millisecond,
		"requests slower than this log at Warn; 0 disables the escalation")
	healthInterval := flag.Duration("health-interval", 5*time.Second,
		"runtime health sampling interval (goroutines, heap, GC pauses, sched latency); 0 disables the sampler")
	admitConcurrency := flag.Int("admit-concurrency", 0,
		"max predict requests executing at once; excess queues up to -admit-queue, then sheds with 503 + Retry-After (0 disables admission control)")
	admitQueue := flag.Int("admit-queue", service.DefaultAdmissionQueue,
		"max predict requests waiting for an execution slot before load shedding starts")
	storeDir := flag.String("store-dir", "",
		"directory for durable MLMF model artifacts; fitted models persist there, evictions demote to disk, and the cache warms from it at boot (empty disables); replicas of one cluster share a directory so joiners warm from the fleet's artifacts")
	serveBudget := flag.Float64("serve-budget", 0,
		"cap the predict route at this many requests per second, modelling a fixed-size serving node for cluster scaling runs (0 = uncapped)")
	profileDir := flag.String("profile-dir", "",
		"directory for continuous-profiler bundles (CPU/heap/mutex/block/goroutine + sidecar); served at /debug/profiles, inspected with mlaas-profile (empty disables)")
	profileInterval := flag.Duration("profile-interval", time.Minute,
		"period between periodic profile captures; 0 captures only on SLO breaches")
	profileCPU := flag.Duration("profile-cpu", time.Second,
		"CPU sampling window per capture (clamped to half the interval)")
	profileMax := flag.Int("profile-max", 32,
		"max profile bundles kept on disk (oldest pruned first)")
	sloLatency := flag.Duration("slo-latency", 0,
		"predict latency objective; requests slower than this spend error budget (0 disables the latency SLO)")
	sloTarget := flag.Float64("slo-target", 0.99,
		"fraction of predict requests that must meet -slo-latency (0.99 = 1% error budget)")
	sloErrorTarget := flag.Float64("slo-error-target", 0,
		"fraction of predict requests that must not be 5xx, e.g. 0.999 (0 disables the error SLO)")
	sloWindow := flag.Duration("slo-window", time.Minute,
		"rolling window the SLO burn rates are computed over")
	sloBurn := flag.Float64("slo-burn", 1,
		"burn rate above which the watchdog triggers a profile capture (1 = budget consumed exactly at the allowed rate)")
	sloQueueDepth := flag.Int64("slo-queue-depth", 0,
		"admission queue depth above which the watchdog triggers (0 disables the queue SLO)")
	sloInterval := flag.Duration("slo-interval", 5*time.Second,
		"how often the watchdog evaluates the SLOs")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		log.Fatalf("mlaas-server: %v", err)
	}
	// Kernel durations feed the same registry /metrics scrapes, so GEMM
	// and distance time per predict shows up next to the stage histograms.
	linalg.SetKernelHook(func(kernel string, seconds float64) {
		telemetry.Default().Histogram(telemetry.KernelHistogram, "kernel", kernel).Observe(seconds)
	})
	// Build identity and runtime health ride the same /metrics exposition:
	// mlaas_build_info pins which binary produced a scrape, the sampler
	// keeps goroutine/heap/GC-pause series current between requests.
	telemetry.SetBuildInfo(telemetry.Default())
	if *healthInterval > 0 {
		stopHealth := telemetry.StartHealthSampler(telemetry.Default(), *healthInterval)
		defer stopHealth()
	}
	api := service.NewServer(logf).
		WithModelCache(*modelCache).
		WithPredictShards(*predictShards).
		WithAdmission(*admitConcurrency, *admitQueue).
		WithServeBudget(*serveBudget).
		WithLogger(logger).
		WithSlowRequestThreshold(*slowReq)
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("mlaas-server: %v", err)
		}
		api = api.WithStore(st)
		start := time.Now()
		n, err := api.WarmFromStore()
		if err != nil {
			log.Fatalf("mlaas-server: warm from %s: %v", *storeDir, err)
		}
		log.Printf("mlaas-server warmed %d models from %s in %s", n, *storeDir, time.Since(start).Round(time.Millisecond))
	}
	// Continuous profiling + SLO watchdog: periodic capture bundles land
	// in -profile-dir (served at /debug/profiles), and when any SLO
	// dimension is enabled, breaches trigger an immediate tagged capture.
	if *profileDir != "" {
		prof, err := profiling.New(profiling.Config{
			Dir:         *profileDir,
			Interval:    *profileInterval,
			CPUDuration: *profileCPU,
			MaxBundles:  *profileMax,
		})
		if err != nil {
			log.Fatalf("mlaas-server: %v", err)
		}
		api = api.WithProfileStore(prof.Store())
		if *sloLatency > 0 || *sloErrorTarget > 0 || *sloQueueDepth > 0 {
			wd, err := profiling.NewWatchdog(profiling.WatchdogConfig{
				SLOs: []profiling.SLO{{
					Name:             "predict",
					Route:            "predict",
					LatencyObjective: sloLatency.Seconds(),
					LatencyTarget:    *sloTarget,
					ErrorTarget:      *sloErrorTarget,
					MaxBurn:          *sloBurn,
					MaxQueueDepth:    *sloQueueDepth,
					Window:           *sloWindow,
				}},
				Interval: *sloInterval,
			})
			if err != nil {
				log.Fatalf("mlaas-server: %v", err)
			}
			wd.Watch(prof)
			wd.Start()
			defer wd.Stop()
			log.Printf("mlaas-server SLO watchdog on predict (latency %s @ %.3f, errors @ %.3f, queue > %d, window %s, max burn %.1f)",
				*sloLatency, *sloTarget, *sloErrorTarget, *sloQueueDepth, *sloWindow, *sloBurn)
		}
		prof.Start()
		defer prof.Stop()
		log.Printf("mlaas-server profiling into %s every %s (bundles at /debug/profiles)", *profileDir, *profileInterval)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("mlaas-server listening on %s (metrics at /metrics, health at /healthz)", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

// buildLogger constructs the slog request logger from the CLI flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}

// servePprof exposes the standard pprof handlers on their own mux and
// listener, keeping the profiling surface off the API address.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("pprof serve: %v", err)
		return
	}
	log.Printf("pprof listening on %s/debug/pprof/", ln.Addr())
	pprofSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := pprofSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pprof serve: %v", err)
	}
}
