// Command mlaas-server hosts the simulated MLaaS platforms over HTTP.
//
// Usage:
//
//	mlaas-server [-addr :8080] [-quiet]
//
// The API mirrors the 2016-era services the paper measured:
//
//	GET  /v1/platforms
//	GET  /v1/platforms/{platform}/surface
//	POST /v1/platforms/{platform}/datasets          (JSON or text/csv)
//	POST /v1/platforms/{platform}/models
//	POST /v1/platforms/{platform}/models/{id}/predictions
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"mlaasbench/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "suppress request logging")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(logf).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("mlaas-server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}
