package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/store"
	"mlaasbench/internal/telemetry"
)

// RestartReport is the -restart cold-vs-warm A/B: restart-to-first-predict
// latency for a fresh process with no artifacts (cold, the first predict
// pays a model fit) versus a fresh process warming its model cache from a
// durable store directory (warm, the first predict is a pure forward pass).
type RestartReport struct {
	Trials int `json:"trials"`
	// Restart-to-first-predict: server construction (including the warm
	// scan, when there is one) through the first successful predict
	// response, median over trials.
	ColdMs float64 `json:"cold_restart_to_predict_ms"`
	WarmMs float64 `json:"warm_restart_to_predict_ms"`
	// WarmLoadMs is the median boot-time warm scan alone.
	WarmLoadMs   float64 `json:"warm_load_ms"`
	WarmedModels int     `json:"warmed_models"`
	// Fits actually run during the measured window, summed over trials.
	// Cold must be trials (one per restart); warm must be zero.
	ColdFits int64   `json:"cold_fits"`
	WarmFits int64   `json:"warm_fits"`
	SpeedupX float64 `json:"speedup_x"`
}

// runRestart measures the warm-restart win end to end. A seed phase fits the
// model once against a store-backed server so the artifact exists; each trial
// then boots two fresh servers — cold (no store) and warm (same store dir,
// cache warmed at boot) — and times construction through the first predict.
func runRestart(platform string, cfg pipeline.Config, sp dataset.Split, seed uint64, batch, trials int, codec client.Codec) (*RestartReport, error) {
	dir, err := os.MkdirTemp("", "mlaas-restart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	instances := tileInstances(sp.Test.X, batch)
	quiet := func(string, ...any) {}

	// firstPredict drives the client sequence a restarted process sees:
	// re-upload, re-train (cache hit or refit), first predict.
	firstPredict := func(api *service.Server) error {
		srv := httptest.NewServer(api.Handler())
		defer srv.Close()
		ctx := context.Background()
		c := client.New(srv.URL).WithCodec(codec)
		dsID, err := c.Upload(ctx, platform, sp.Train)
		if err != nil {
			return fmt.Errorf("upload: %w", err)
		}
		modelID, err := c.Train(ctx, platform, dsID, cfg, seed)
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		if _, err := c.Predict(ctx, platform, modelID, instances); err != nil {
			return fmt.Errorf("predict: %w", err)
		}
		return nil
	}

	// Seed phase: one store-backed fit persists the artifact the warm arm
	// will boot from. Not measured.
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	if err := firstPredict(service.NewServer(quiet).WithRegistry(telemetry.NewRegistry()).WithStore(st)); err != nil {
		return nil, fmt.Errorf("seed fit: %w", err)
	}

	rep := &RestartReport{Trials: trials}
	var coldMs, warmMs, loadMs []float64
	for i := 0; i < trials; i++ {
		// Cold restart: fresh process state, no artifacts — the train refits.
		reg := telemetry.NewRegistry()
		t0 := time.Now()
		api := service.NewServer(quiet).WithRegistry(reg)
		if err := firstPredict(api); err != nil {
			return nil, fmt.Errorf("cold trial %d: %w", i, err)
		}
		coldMs = append(coldMs, ms(time.Since(t0)))
		rep.ColdFits += reg.Counter(telemetry.ModelCacheMisses).Value()

		// Warm restart: fresh process state over the artifact dir — the boot
		// warm scan pre-loads the model and the train is a cache hit.
		reg = telemetry.NewRegistry()
		t0 = time.Now()
		wst, err := store.Open(dir)
		if err != nil {
			return nil, err
		}
		api = service.NewServer(quiet).WithRegistry(reg).WithStore(wst)
		w0 := time.Now()
		n, err := api.WarmFromStore()
		if err != nil {
			return nil, fmt.Errorf("warm trial %d: %w", i, err)
		}
		loadMs = append(loadMs, ms(time.Since(w0)))
		rep.WarmedModels = n
		if err := firstPredict(api); err != nil {
			return nil, fmt.Errorf("warm trial %d: %w", i, err)
		}
		warmMs = append(warmMs, ms(time.Since(t0)))
		rep.WarmFits += reg.Counter(telemetry.ModelCacheMisses).Value()
	}

	rep.ColdMs = median(coldMs)
	rep.WarmMs = median(warmMs)
	rep.WarmLoadMs = median(loadMs)
	if rep.WarmMs > 0 {
		rep.SpeedupX = rep.ColdMs / rep.WarmMs
	}
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
