package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// TestPassTelemetryIsolation runs the two in-process arms the way main does
// and checks each pass's telemetry lands only in its own registry: the
// refit arm must see only refit-path predicts, the forward arm only
// forward-path predicts, and the process-wide default registry must stay
// untouched by either.
func TestPassTelemetryIsolation(t *testing.T) {
	cfg := pipeline.Config{Feat: parseFeat(""), Classifier: "logreg", Params: map[string]any{}}
	ds := synth.GenerateClean(synth.Spec{
		Name: "loadgen", Gen: synth.GenLinear, N: 120, D: 4, Noise: 0.2,
	}, synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(7))

	regs := map[string]*telemetry.Registry{}
	for _, arm := range []struct {
		name  string
		cache int
	}{{"refit", 0}, {"forward", 32}} {
		reg := telemetry.NewRegistry()
		srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).
			WithRegistry(reg).
			WithModelCache(arm.cache).
			Handler())
		pass, err := runPass(arm.name, srv.URL, "local", cfg, sp, 1, 2, 16, 300*time.Millisecond, client.CodecJSON, reg)
		srv.Close()
		if err != nil {
			t.Fatalf("%s pass: %v", arm.name, err)
		}
		if pass.Requests == 0 {
			t.Fatalf("%s pass made no requests", arm.name)
		}
		regs[arm.name] = reg
	}

	refits := func(reg *telemetry.Registry, path string) uint64 {
		return reg.Histogram(telemetry.PredictPathHistogram, "path", path).Count()
	}
	if n := refits(regs["refit"], "refit"); n == 0 {
		t.Error("refit arm recorded no refit-path predicts")
	}
	if n := refits(regs["refit"], "forward"); n != 0 {
		t.Errorf("refit arm recorded %d forward-path predicts; cache should be off", n)
	}
	if n := refits(regs["forward"], "forward"); n == 0 {
		t.Error("forward arm recorded no forward-path predicts")
	}
	// Both sides of the stitch live in the pass registry: client rpc
	// metrics and retained traces rooted at the client's rpc span.
	for name, reg := range regs {
		if v := reg.Counter("mlaas_client_requests_total", "endpoint", "predict").Value(); v == 0 {
			t.Errorf("%s arm: client metrics did not land in the pass registry", name)
		}
		if reg.Traces().Len() == 0 {
			t.Errorf("%s arm retained no traces", name)
		}
	}
	// Nothing leaked into the process-wide default registry.
	if v := telemetry.Default().Counter("mlaas_client_requests_total", "endpoint", "predict").Value(); v != 0 {
		t.Errorf("default registry saw %d client predicts; passes must be isolated", v)
	}
	if n := telemetry.Default().Histogram(telemetry.PredictPathHistogram, "path", "refit").Count(); n != 0 {
		t.Errorf("default registry saw %d refit predicts; passes must be isolated", n)
	}

	// exportTraces writes a JSONL that mlaas-trace can read back.
	out := filepath.Join(t.TempDir(), "traces.jsonl")
	passes := []PassReport{{Name: "refit"}, {Name: "forward"}}
	if err := exportTraces(out, passes, []*telemetry.Registry{regs["refit"], regs["forward"]}); err != nil {
		t.Fatalf("export: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open export: %v", err)
	}
	defer f.Close()
	traces, err := telemetry.ReadTraceJSONL(f)
	if err != nil {
		t.Fatalf("read export: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("export contains no traces")
	}
	seenPass := map[string]bool{}
	for _, td := range traces {
		seenPass[td.Root.Attrs["pass"]] = true
	}
	if !seenPass["refit"] || !seenPass["forward"] {
		t.Errorf("export lacks a pass: %v", seenPass)
	}
}

// TestPerfRecordSaturationBreakdown checks that -perf-dir records from a
// saturation run carry the 503 shed total and the per-status client error
// breakdown, aggregated across the sweep's points, with the 503 bucket
// folded into the shed series instead of double-reported.
func TestPerfRecordSaturationBreakdown(t *testing.T) {
	rep := Report{
		Platform: "local", Config: "logreg", Batch: 16, Codec: "json",
		Saturation: &SaturationReport{
			KneeRPS: 100, PeakGoodputRPS: 100, GoodputAt2xKneeRPS: 95,
			Points: []SaturationPoint{
				{OfferedRPS: 100, Good: 50, Shed: 3, Errors: 2,
					ErrorsByStatus: map[string]int{"503": 3, "500": 1, "network": 1}},
				{OfferedRPS: 200, Good: 50, Shed: 7, Errors: 1,
					ErrorsByStatus: map[string]int{"503": 7, "500": 1}},
			},
		},
	}
	rec := perfRecord(rep, "sat-test")
	got := map[string]float64{}
	for _, r := range rec.Results {
		if len(r.Runs) == 1 {
			got[r.Name] = r.Runs[0]
		}
		if r.Name == "loadgen/saturation/errors_503" {
			t.Error("503s must land in shed_503, not an errors_503 series")
		}
	}
	want := map[string]float64{
		"loadgen/saturation/shed_503":       10,
		"loadgen/saturation/errors":         3,
		"loadgen/saturation/errors_500":     2,
		"loadgen/saturation/errors_network": 1,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}
