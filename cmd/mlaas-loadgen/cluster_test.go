package main

import (
	"testing"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/synth"
)

func TestParseClusterCounts(t *testing.T) {
	got, err := parseClusterCounts(" 1, 2,4 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"", "0", "a", "1,-2"} {
		if _, err := parseClusterCounts(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// TestClusterScalingTwoReplicas is a short version of the committed
// scaling sweep: two budget-capped replicas behind the router must beat
// one by well over the pacing noise. The full 1/2/4 curve lives in
// perf/results; this guards the mechanism (budgeted replicas, model
// spread, least-loaded routing) in the test suite.
func TestClusterScalingTwoReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaling measurement")
	}
	ds := synth.GenerateClean(synth.Spec{Name: "loadgen", Gen: synth.GenLinear, N: 200, D: 6, Noise: 0.2}, synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(7))
	cfg := pipeline.Config{Feat: pipeline.Feat{Kind: "none"}, Classifier: "logreg", Params: map[string]any{}}
	rep, err := runCluster([]int{1, 2}, 80, "local", cfg, sp, 1, 8, 32, 8, 1200*time.Millisecond, client.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("%d points, want 2", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Errors > 0 {
			t.Fatalf("%d replicas: %d errors", pt.Replicas, pt.Errors)
		}
	}
	if rep.Points[1].ScaleX < 1.5 {
		t.Fatalf("2 replicas scaled %.2fx over 1, want >= 1.5x", rep.Points[1].ScaleX)
	}
}
