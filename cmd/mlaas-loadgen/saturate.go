package main

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/telemetry"
)

// SaturationPoint is one offered-load level of the sweep. Goodput counts
// only successful predicts; sheds are the server's 503 + Retry-After
// admission rejections, split from real errors by status code.
type SaturationPoint struct {
	OfferedRPS float64 `json:"offered_rps"`
	GoodputRPS float64 `json:"goodput_rps"`
	ShedRPS    float64 `json:"shed_rps"`
	Requests   int     `json:"requests"` // completed arrivals (good + late + shed + errors)
	Good       int     `json:"good"`
	// Late counts successes that completed after the offered window closed
	// (drain stragglers); they are excluded from goodput.
	Late int `json:"late,omitempty"`
	// Dropped counts arrivals the generator refused to send because the
	// in-flight cap was reached — offered load the client machine itself
	// could not carry. They are not goodput and not server sheds.
	Dropped     int     `json:"dropped,omitempty"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"duration_sec"`
	P95Ms       float64 `json:"p95_ms"` // over in-window successful requests only
	// ErrorsByStatus breaks every failed arrival down by HTTP status code
	// ("503", "500", ...); transport failures that never carried a status
	// are keyed "network". The "503" entry equals Shed.
	ErrorsByStatus map[string]int `json:"errors_by_status,omitempty"`
}

// SaturationReport is the sweep artifact: the goodput-vs-offered-load curve
// plus its knee. With admission control on, goodput past the knee should
// stay flat (shed the excess) instead of collapsing — the acceptance bar is
// goodput within 10% of peak at 2x the knee's offered load.
type SaturationReport struct {
	// CapacityRPS is the closed-loop throughput measured before an "auto"
	// sweep; the sweep rates are multiples of it. 0 for explicit rate lists.
	CapacityRPS float64           `json:"capacity_rps,omitempty"`
	Points      []SaturationPoint `json:"points"`
	// KneeRPS is the smallest offered rate whose goodput reaches 95% of the
	// peak goodput across the sweep — where the curve stops climbing.
	KneeRPS        float64 `json:"knee_rps"`
	PeakGoodputRPS float64 `json:"peak_goodput_rps"`
	// GoodputAt2xKneeRPS is the goodput of the first point offered at least
	// 2x the knee rate (0 when the sweep never reached 2x the knee).
	GoodputAt2xKneeRPS float64 `json:"goodput_at_2x_knee_rps"`
}

// autoMultiples are the offered-load levels of an "auto" sweep, as
// fractions of the measured closed-loop capacity: below the knee, at it,
// and well past it.
var autoMultiples = []float64{0.5, 0.75, 1.0, 1.5, 2.0, 3.0}

// runSaturation trains one model, then measures goodput at each offered
// rate with an open-loop arrival process. "auto" first measures closed-loop
// capacity with `clients` workers and sweeps multiples of it.
func runSaturation(url, platform string, cfg pipeline.Config, sp dataset.Split, seed uint64, clients, batch int, codec client.Codec, spec string, pointDur time.Duration, reg *telemetry.Registry) (*SaturationReport, error) {
	ctx := context.Background()
	c := client.New(url).WithCodec(codec)
	c.Telemetry = reg
	dsID, err := c.Upload(ctx, platform, sp.Train)
	if err != nil {
		return nil, fmt.Errorf("upload: %w", err)
	}
	modelID, err := c.Train(ctx, platform, dsID, cfg, seed)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	instances := tileInstances(sp.Test.X, batch)
	if _, err := c.Predict(ctx, platform, modelID, instances); err != nil {
		return nil, fmt.Errorf("warm-up predict: %w", err)
	}

	rep := &SaturationReport{}
	var rates []float64
	if spec == "auto" {
		capacity, err := measureCapacity(ctx, url, platform, modelID, instances, clients, codec, pointDur, reg)
		if err != nil {
			return nil, err
		}
		rep.CapacityRPS = capacity
		for _, m := range autoMultiples {
			rates = append(rates, m*capacity)
		}
	} else {
		for _, part := range strings.Split(spec, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || r <= 0 {
				return nil, fmt.Errorf("bad -saturate rate %q: want a positive req/s number or \"auto\"", part)
			}
			rates = append(rates, r)
		}
	}
	// The knee scan assumes ascending offered rates; explicit lists may
	// arrive in any order.
	sort.Float64s(rates)
	for _, rate := range rates {
		rep.Points = append(rep.Points, runOpenLoop(ctx, url, platform, modelID, instances, rate, codec, pointDur, reg))
	}
	rep.KneeRPS, rep.PeakGoodputRPS, rep.GoodputAt2xKneeRPS = analyzeSaturation(rep.Points)
	return rep, nil
}

// measureCapacity runs a short closed-loop burst — the same client loop as
// runPass — and returns its throughput, the anchor for auto sweep rates.
func measureCapacity(ctx context.Context, url, platform, modelID string, instances [][]float64, clients int, codec client.Codec, d time.Duration, reg *telemetry.Registry) (float64, error) {
	var (
		mu sync.Mutex
		n  int
	)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(url).WithCodec(codec)
			cl.Telemetry = reg
			local := 0
			for time.Now().Before(deadline) {
				if _, err := cl.Predict(ctx, platform, modelID, instances); err == nil {
					local++
				}
			}
			mu.Lock()
			n += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if n == 0 {
		return 0, fmt.Errorf("capacity probe made no successful requests in %s", d)
	}
	return float64(n) / elapsed, nil
}

// runOpenLoop offers arrivals at a fixed rate regardless of completions —
// the regime where an unprotected server past saturation collapses. Sheds
// are identified by status code and never retried (MaxRetries < 0), so the
// point measures the server's degradation policy, not the client's patience.
//
// Arrivals are paced on an absolute schedule (arrival i is due at
// start + i/rate) rather than a ticker: tickers coalesce missed ticks, so
// under CPU contention a ticker loop silently offers less than the nominal
// rate. Falling behind schedule here fires immediately and catches up —
// constant-throughput pacing, the wrk2 discipline.
//
// Rates divide by the offered window, and goodput counts only successes
// completing inside it: requests still draining after the last arrival
// would otherwise stretch the denominator and understate goodput.
//
// In-flight requests are capped (openLoopMaxInflight): past the cap an
// arrival is counted as a client-side drop instead of being sent. Without
// the cap, offered rates beyond what the client machine can generate turn
// into connection storms that overflow the listener's accept backlog — the
// measured collapse would then be the client's, not the server's.
func runOpenLoop(ctx context.Context, url, platform, modelID string, instances [][]float64, rate float64, codec client.Codec, d time.Duration, reg *telemetry.Registry) SaturationPoint {
	cl := client.New(url).WithCodec(codec)
	cl.Telemetry = reg
	cl.MaxRetries = -1 // open loop: a shed is a data point, not a retry

	interval := float64(time.Second) / rate
	var (
		mu        sync.Mutex
		latencies []float64
		good      int // successes completing inside the offered window
		late      int // successes completing after it (drain)
		dropped   int // arrivals refused at the in-flight cap
		shed      int
		errs      int
		byStatus  map[string]int
	)
	// Warm the connection pool before the window opens: the first arrivals
	// would otherwise all pay dials, depressing the point's goodput in a
	// way that has nothing to do with the offered rate.
	var warm sync.WaitGroup
	for i := 0; i < openLoopWarmup; i++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			_, _ = cl.Predict(ctx, platform, modelID, instances)
		}()
	}
	warm.Wait()

	inflight := make(chan struct{}, openLoopMaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(d)
	fire := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			t0 := time.Now()
			_, err := cl.Predict(ctx, platform, modelID, instances)
			done := time.Now()
			ms := float64(done.Sub(t0).Microseconds()) / 1000
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && done.Before(deadline):
				good++
				latencies = append(latencies, ms)
			case err == nil:
				late++
			case client.StatusCode(err) == http.StatusServiceUnavailable:
				shed++
				byStatus = countStatus(byStatus, err)
			default:
				errs++
				byStatus = countStatus(byStatus, err)
			}
		}()
	}
	// Arrivals due by the same wall-clock instant are handled as one batch:
	// at high offered rates a per-arrival sleep/iterate loop becomes a busy
	// loop that starves the server of the very CPU it is being measured on.
	issued := 0
	for {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		due := int(float64(now.Sub(start)) / interval)
		for ; issued <= due; issued++ {
			select {
			case inflight <- struct{}{}:
				fire()
			default:
				dropped++
			}
		}
		next := start.Add(time.Duration(float64(issued) * interval))
		wait := time.Until(next)
		if wait < minPacingSleep {
			// Perpetually-behind rates must not degenerate into a busy
			// loop: on a small machine that would starve the server of the
			// CPU whose saturation is being measured. Due arrivals are
			// still handled (sent or dropped) in one batch per wake.
			wait = minPacingSleep
		}
		time.Sleep(wait)
	}
	wg.Wait()
	window := d.Seconds()
	sort.Float64s(latencies)
	return SaturationPoint{
		OfferedRPS:  rate,
		GoodputRPS:  float64(good) / window,
		ShedRPS:     float64(shed) / window,
		Requests:    good + late + shed + errs,
		Good:        good,
		Late:        late,
		Dropped:     dropped,
		Shed:           shed,
		Errors:         errs,
		DurationSec:    window,
		P95Ms:          quantile(latencies, 0.95),
		ErrorsByStatus: byStatus,
	}
}

// countStatus buckets one failed arrival by its HTTP status code; errors
// that never reached the server (dial/timeout/decode) land in "network".
// The map is allocated lazily so fully-successful points marshal without
// an errors_by_status key.
func countStatus(m map[string]int, err error) map[string]int {
	if m == nil {
		m = make(map[string]int)
	}
	if code := client.StatusCode(err); code != 0 {
		m[strconv.Itoa(code)]++
	} else {
		m["network"]++
	}
	return m
}

// openLoopMaxInflight bounds concurrent outstanding open-loop requests. It
// matches the client transport's idle-connection pool so a saturated point
// reuses warm connections instead of storming the listener with dials
// (whose accept-backlog queueing would be measured as server latency).
const openLoopMaxInflight = client.DefaultMaxIdleConnsPerHost

// openLoopWarmup is how many pool-warming predicts precede each measured
// open-loop window.
const openLoopWarmup = 32

// minPacingSleep floors the arrival-pacing sleep so overload never turns
// the generator into a busy loop; ≤5000 wakes/s, each handling every
// arrival due since the last.
const minPacingSleep = 200 * time.Microsecond

// analyzeSaturation locates the knee of the goodput curve: the smallest
// offered rate whose goodput reaches 95% of the sweep's peak goodput.
// Past the knee more offered load buys no more goodput — with admission
// control it should not cost any either, which goodputAt2x checks.
func analyzeSaturation(points []SaturationPoint) (knee, peak, goodputAt2x float64) {
	if len(points) == 0 {
		return 0, 0, 0
	}
	for _, p := range points {
		if p.GoodputRPS > peak {
			peak = p.GoodputRPS
		}
	}
	for _, p := range points {
		if p.GoodputRPS >= 0.95*peak {
			knee = p.OfferedRPS
			break
		}
	}
	for _, p := range points {
		if p.OfferedRPS >= 2*knee-1e-9 {
			goodputAt2x = p.GoodputRPS
			break
		}
	}
	return knee, peak, goodputAt2x
}
