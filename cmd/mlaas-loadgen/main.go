// Command mlaas-loadgen drives the predictions endpoint with closed-loop
// concurrent clients and reports latency quantiles and throughput.
//
// Usage:
//
//	mlaas-loadgen [-clients 4] [-batch 64] [-shards 0] [-duration 3s]
//	              [-platform local] [-classifier mlp] [-feat scaler:standard]
//	              [-codec json|binary] [-seed 1] [-cache 128]
//	              [-url http://host:8080] [-out BENCH.json]
//	              [-perf-dir perf/results] [-perf-label loadgen]
//	              [-saturate auto|r1,r2,...] [-saturate-duration 2s]
//	              [-admit-concurrency NumCPU] [-admit-queue 64]
//	              [-restart] [-restart-trials 5]
//
// -restart replaces the closed-loop passes with a warm-restart A/B: it
// seeds a durable artifact store (internal/store MLMF files) with one
// fitted model, then repeatedly boots fresh in-process servers and times
// restart-to-first-predict — cold (no store, the train refits) versus warm
// (cache warmed from the store at boot, the train is a cache hit and the
// first predict is a pure forward pass). The report records both medians,
// the fit counts (warm must be zero), and the speedup.
//
// -codec binary sends predict bodies as internal/wire binary frames instead
// of JSON (and receives binary label frames back) — same requests, same
// labels, less encode/decode work per request. Reports record the codec;
// perf history series keep their names so codec changes show up as steps in
// the same trajectory.
//
// -saturate switches from closed-loop to open-loop: arrivals are offered at
// fixed rates regardless of completions, and the report becomes a goodput
// vs offered-load curve with its knee. "auto" first measures closed-loop
// capacity, then sweeps 0.5x..3x of it. In-process saturation runs start
// the server with admission control (-admit-concurrency/-admit-queue) so
// excess load is shed with 503 + Retry-After and goodput stays flat past
// the knee; sheds are counted separately from errors via the status code.
//
// -perf-dir additionally appends the run to the committed perf history in
// the same record schema mlaas-perf writes, so loadgen throughput and
// latency trend in `mlaas-perf report -kind loadgen` alongside converted
// legacy results.
//
// -batch sets the exact instance count per predict request (test rows are
// tiled when the request is larger than the test set), exercising the
// server's row-sharded batch forward path; reports include per-row latency
// alongside per-request. -shards bounds the in-process servers' forward
// fan-out (0 = one shard per CPU, 1 = serial).
//
// With -url empty (the default) the generator runs fully in-process: it
// starts two httptest servers — one with the model cache disabled (the
// pre-fit-once retrain-per-request behaviour) and one with the fit-once
// cache — runs the identical workload against both, and reports the
// speedup. This is how BENCH_PR3.json is produced; see EXPERIMENTS.md.
//
// With -url set it runs a single pass against the live server (whose
// cache policy is whatever the server was started with).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/linalg"
	"mlaasbench/internal/perf"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/profiling"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// PassReport summarises one closed-loop pass.
type PassReport struct {
	Name        string  `json:"name"` // "refit", "forward", or "remote"
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"duration_sec"`
	ReqPerSec   float64 `json:"req_per_sec"`
	InstPerSec  float64 `json:"instances_per_sec"`
	MeanMs      float64 `json:"mean_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// RowMeanMs / RowP95Ms are the per-request latencies divided by the
	// batch size — the cost of one prediction inside a batched request.
	RowMeanMs float64 `json:"row_mean_ms"`
	RowP95Ms  float64 `json:"row_p95_ms"`
}

// Report is the JSON artifact (e.g. BENCH_PR3.json).
type Report struct {
	Platform   string       `json:"platform"`
	Classifier string       `json:"classifier"`
	Config     string       `json:"config"`
	Codec      string       `json:"codec"`
	DatasetN   int          `json:"dataset_n"`
	DatasetD   int          `json:"dataset_d"`
	Clients    int          `json:"clients"`
	Batch      int          `json:"batch"`
	CacheSize  int          `json:"cache_models"`
	Seed       uint64       `json:"seed"`
	Passes     []PassReport `json:"passes"`
	// SpeedupRPS is forward req/s over refit req/s (0 for remote runs).
	SpeedupRPS float64 `json:"speedup_rps,omitempty"`
	// Saturation is set by -saturate runs (goodput vs offered load).
	Saturation *SaturationReport `json:"saturation,omitempty"`
	// Restart is set by -restart runs (cold vs warm restart-to-predict).
	Restart *RestartReport `json:"restart,omitempty"`
	// Cluster is set by -cluster runs (goodput vs fleet size through the
	// router, per-replica capacity fixed by -replica-budget).
	Cluster *ClusterReport `json:"cluster,omitempty"`
}

func main() {
	var (
		url        = flag.String("url", "", "target server; empty runs in-process refit-vs-forward comparison")
		platform   = flag.String("platform", "local", "platform name")
		classifier = flag.String("classifier", "mlp", "classifier name")
		feat       = flag.String("feat", "", `FEAT option as kind[:name], e.g. "scaler:standard"; empty for none`)
		clients    = flag.Int("clients", 4, "concurrent closed-loop clients")
		batch      = flag.Int("batch", 64, "instances per predict request (test rows tile to reach it)")
		shards     = flag.Int("shards", 0, "predict shards for in-process servers (0 = one per CPU, 1 = serial)")
		duration   = flag.Duration("duration", 3*time.Second, "measured duration per pass")
		seed       = flag.Uint64("seed", 1, "training seed")
		cache      = flag.Int("cache", service.DefaultModelCacheModels, "model-cache size for the forward pass (in-process mode)")
		codecName  = flag.String("codec", "json", "predict body codec: json or binary (the internal/wire frame format)")
		saturate   = flag.String("saturate", "", `offered-load sweep: "auto" (multiples of measured capacity) or comma-separated req/s rates; replaces the closed-loop passes`)
		satDur     = flag.Duration("saturate-duration", 2*time.Second, "measured duration per saturation point")
		restart    = flag.Bool("restart", false, "measure cold vs warm restart-to-first-predict using a durable artifact store; replaces the closed-loop passes")
		restartN   = flag.Int("restart-trials", 5, "restart A/B trials (median is reported)")
		clusterArg = flag.String("cluster", "", `replica-scaling sweep: comma-separated fleet sizes (e.g. "1,2,4"); each point runs the closed-loop workload through a router over that many budget-capped in-process replicas; replaces the closed-loop passes`)
		clusterRPS = flag.Float64("replica-budget", 150, "per-replica serve budget (req/s) for -cluster points — the fixed-node capacity model")
		clusterMdl = flag.Int("cluster-models", 12, "distinct models trained per -cluster point so primaries spread over the fleet")
		admitConc  = flag.Int("admit-concurrency", runtime.NumCPU(), "admission slots for the in-process saturation server (0 disables load shedding)")
		admitQueue = flag.Int("admit-queue", service.DefaultAdmissionQueue, "admission waiting-queue bound for the in-process saturation server")
		out        = flag.String("out", "", "write the JSON report here (always printed to stdout)")
		perfDir    = flag.String("perf-dir", "", "also append this run as a perf history record (same schema as mlaas-perf run) into this directory, e.g. perf/results")
		perfLabel  = flag.String("perf-label", "loadgen", "label stamped on the perf history record")
		traceOut   = flag.String("trace-out", "", "export every pass's retained traces as JSONL here (analyse with mlaas-trace)")
		profDir    = flag.String("profile-dir", "", "capture one profile bundle per pass into this directory, concurrent with the pass so the CPU window samples it under load (inspect with mlaas-profile)")
		telSummary = flag.Bool("telemetry", false, "print each pass's telemetry summary to stderr")
	)
	flag.Parse()

	codec := client.Codec(*codecName)
	if codec != client.CodecJSON && codec != client.CodecBinary {
		log.Fatalf("loadgen: bad -codec %q: want json or binary", *codecName)
	}

	cfg := pipeline.Config{
		Feat:       parseFeat(*feat),
		Classifier: *classifier,
		Params:     map[string]any{},
	}
	// A mid-size separable problem: big enough that predicts carry real
	// batches, small enough that the refit pass completes requests.
	ds := synth.GenerateClean(synth.Spec{
		Name: "loadgen", Gen: synth.GenLinear, N: 200, D: 6, Noise: 0.2,
	}, synth.Quick, *seed)
	sp := ds.StratifiedSplit(0.7, rng.New(7))

	rep := Report{
		Platform:   *platform,
		Classifier: *classifier,
		Config:     cfg.String(),
		Codec:      string(codec),
		DatasetN:   ds.N(),
		DatasetD:   ds.D(),
		Clients:    *clients,
		Batch:      *batch,
		CacheSize:  *cache,
		Seed:       *seed,
	}

	// Each pass records into its own registry — shared by the pass's server
	// (in-process mode) and every closed-loop client — so cache-off and
	// fit-once telemetry never mix, and a pass's exported traces contain
	// both sides of each request stitch.
	var passRegs []*telemetry.Registry
	if *restart {
		// Restart A/B: cold (refit on first predict) vs warm (cache warmed
		// from MLMF artifacts at boot, first predict is a forward pass).
		res, err := runRestart(*platform, cfg, sp, *seed, *batch, *restartN, codec)
		if err != nil {
			log.Fatalf("loadgen: restart A/B: %v", err)
		}
		rep.Restart = res
	} else if *clusterArg != "" {
		// Replica-scaling sweep: the same workload through a router over
		// growing fleets of budget-capped replicas. Clients auto-scale with
		// the largest fleet so every replica's pacer stays saturated.
		counts, err := parseClusterCounts(*clusterArg)
		if err != nil {
			log.Fatalf("loadgen: -cluster: %v", err)
		}
		maxN := 0
		for _, n := range counts {
			if n > maxN {
				maxN = n
			}
		}
		cclients := *clients
		if min := 4 * maxN; cclients < min {
			cclients = min
		}
		cl, err := runCluster(counts, *clusterRPS, *platform, cfg, sp, *seed, cclients, *batch, *clusterMdl, *duration, codec)
		if err != nil {
			log.Fatalf("loadgen: cluster sweep: %v", err)
		}
		rep.Cluster = cl
		rep.Clients = cclients
	} else if *saturate != "" {
		// Open-loop saturation sweep: offered load is fixed per point,
		// goodput and sheds are measured. In-process mode runs the server
		// with admission control on so goodput stays flat past the knee.
		reg := telemetry.NewRegistry()
		target := *url
		if target == "" {
			srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).
				WithRegistry(reg).
				WithModelCache(*cache).
				WithPredictShards(*shards).
				WithAdmission(*admitConc, *admitQueue).
				Handler())
			defer srv.Close()
			target = srv.URL
		}
		err := profiledPass(*profDir, "saturation", reg, captureWindow(*satDur), func() error {
			sat, err := runSaturation(target, *platform, cfg, sp, *seed, *clients, *batch, codec, *saturate, *satDur, reg)
			rep.Saturation = sat
			return err
		})
		if err != nil {
			log.Fatalf("loadgen: saturation sweep: %v", err)
		}
		passRegs = append(passRegs, reg)
	} else if *url != "" {
		reg := telemetry.NewRegistry()
		err := profiledPass(*profDir, "pass-remote", reg, captureWindow(*duration), func() error {
			pass, err := runPass("remote", *url, *platform, cfg, sp, *seed, *clients, *batch, *duration, codec, reg)
			if err == nil {
				rep.Passes = append(rep.Passes, pass)
			}
			return err
		})
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		passRegs = append(passRegs, reg)
	} else {
		// Two in-process passes over identical workloads. "refit" is the
		// pre-fit-once serving path (cache disabled, every predict
		// retrains); "forward" serves the resident fitted model.
		for _, arm := range []struct {
			name  string
			cache int
		}{{"refit", 0}, {"forward", *cache}} {
			reg := telemetry.NewRegistry()
			srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).
				WithRegistry(reg).
				WithModelCache(arm.cache).
				WithPredictShards(*shards).
				Handler())
			err := profiledPass(*profDir, "pass-"+arm.name, reg, captureWindow(*duration), func() error {
				pass, err := runPass(arm.name, srv.URL, *platform, cfg, sp, *seed, *clients, *batch, *duration, codec, reg)
				if err == nil {
					rep.Passes = append(rep.Passes, pass)
				}
				return err
			})
			srv.Close()
			if err != nil {
				log.Fatalf("loadgen: %s pass: %v", arm.name, err)
			}
			passRegs = append(passRegs, reg)
		}
		if rep.Passes[0].ReqPerSec > 0 {
			rep.SpeedupRPS = rep.Passes[1].ReqPerSec / rep.Passes[0].ReqPerSec
		}
	}
	if *telSummary {
		for i, reg := range passRegs {
			name := "saturation"
			if i < len(rep.Passes) {
				name = rep.Passes[i].Name
			}
			fmt.Fprintf(os.Stderr, "--- %s pass telemetry ---\n", name)
			telemetry.WriteSummary(os.Stderr, reg)
		}
	}
	if *traceOut != "" {
		if err := exportTraces(*traceOut, rep.Passes, passRegs); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		fmt.Printf("traces written to %s\n", *traceOut)
	}

	printSummary(rep)
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: encode report: %v", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: write %s: %v", *out, err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *perfDir != "" {
		path, err := perfRecord(rep, *perfLabel).WriteFile(*perfDir)
		if err != nil {
			log.Fatalf("loadgen: perf record: %v", err)
		}
		fmt.Printf("perf record written to %s\n", path)
	}
}

// profiledPass runs fn, capturing one profile bundle concurrently when
// dir is set — the CPU window then samples the pass while it is actually
// under load, and the sidecar links the pass registry's slowest retained
// traces. Tags become part of the bundle id, so `mlaas-profile diff
// pass-refit pass-forward` compares the two arms directly.
func profiledPass(dir, tag string, reg *telemetry.Registry, window time.Duration, fn func() error) error {
	if dir == "" {
		return fn()
	}
	p, err := profiling.New(profiling.Config{Dir: dir, CPUDuration: window, Registry: reg})
	if err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.CaptureNow(tag, profiling.ReasonManual, nil); err != nil {
			log.Printf("loadgen: profile capture (%s): %v", tag, err)
		}
	}()
	err = fn()
	<-done
	return err
}

// captureWindow sizes a pass's CPU sampling window: half the pass, kept
// inside [100ms, 2s] so short passes still sample and long ones don't
// drag the capture out.
func captureWindow(d time.Duration) time.Duration {
	w := d / 2
	if w > 2*time.Second {
		w = 2 * time.Second
	}
	if w < 100*time.Millisecond {
		w = 100 * time.Millisecond
	}
	return w
}

// perfRecord reshapes the report into the append-only perf/results schema.
// perf.LoadgenResults is shared with the legacy-BENCH converter, so live
// runs extend the same (name, unit) series the converted history started.
func perfRecord(rep Report, label string) *perf.Record {
	rec := &perf.Record{
		Schema: perf.SchemaVersion,
		Kind:   perf.KindLoadgen,
		Label:  label,
		Time:   time.Now().UTC(),
		Env:    perf.CurrentEnv(),
		Source: "mlaas-loadgen " + strings.Join(os.Args[1:], " "),
		Notes: fmt.Sprintf("closed-loop loadgen: %s %s, %d clients, batch %d, codec %s",
			rep.Platform, rep.Config, rep.Clients, rep.Batch, rep.Codec),
	}
	for _, p := range rep.Passes {
		rec.Results = append(rec.Results,
			perf.LoadgenResults("loadgen/"+p.Name, p.ReqPerSec, p.InstPerSec, p.MeanMs, p.P50Ms, p.P95Ms, p.P99Ms)...)
	}
	one := func(name, unit string, v float64) perf.Result {
		r := perf.Result{Name: name, Unit: unit, Runs: []float64{v}, HigherIsBetter: perf.HigherBetterUnit(unit)}
		r.Finalize()
		return r
	}
	if s := rep.Saturation; s != nil {
		rec.Notes = fmt.Sprintf("open-loop saturation sweep: %s %s, batch %d, codec %s",
			rep.Platform, rep.Config, rep.Batch, rep.Codec)
		rec.Results = append(rec.Results,
			one("loadgen/saturation/knee", "req/s", s.KneeRPS),
			one("loadgen/saturation/peak_goodput", "req/s", s.PeakGoodputRPS),
			one("loadgen/saturation/goodput_at_2x_knee", "req/s", s.GoodputAt2xKneeRPS),
		)
		// Sweep-wide failure accounting: the 503 shed total (admission
		// control doing its job) plus every non-shed error bucketed by
		// status, so a record shows *how* a point failed, not just that it
		// did. Lower is better for all of these ("count" has no "/s").
		shed, errTotal := 0, 0
		byStatus := map[string]int{}
		for _, p := range s.Points {
			shed += p.Shed
			errTotal += p.Errors
			for k, v := range p.ErrorsByStatus {
				byStatus[k] += v
			}
		}
		rec.Results = append(rec.Results,
			one("loadgen/saturation/shed_503", "count", float64(shed)),
			one("loadgen/saturation/errors", "count", float64(errTotal)),
		)
		for _, k := range sortedStatusKeys(byStatus) {
			if k == "503" {
				continue // already the shed_503 series
			}
			rec.Results = append(rec.Results,
				one("loadgen/saturation/errors_"+k, "count", float64(byStatus[k])))
		}
	}
	if cl := rep.Cluster; cl != nil {
		rec.Notes = fmt.Sprintf("cluster scaling sweep: %s %s, %d models, %d clients, %.0f req/s per replica, codec %s",
			rep.Platform, rep.Config, cl.Models, cl.Clients, cl.ReplicaBudgetRPS, rep.Codec)
		for _, pt := range cl.Points {
			suffix := strconv.Itoa(pt.Replicas)
			rec.Results = append(rec.Results,
				one("loadgen/cluster/goodput_"+suffix, "req/s", pt.GoodputRPS))
			if pt.Replicas > 1 {
				// "x" is a ratio, not a latency: mark the direction manually.
				r := perf.Result{Name: "loadgen/cluster/scale_" + suffix, Unit: "x",
					Runs: []float64{pt.ScaleX}, HigherIsBetter: true}
				r.Finalize()
				rec.Results = append(rec.Results, r)
			}
		}
	}
	if r := rep.Restart; r != nil {
		rec.Notes = fmt.Sprintf("restart A/B: %s %s, %d trials, batch %d",
			rep.Platform, rep.Config, r.Trials, rep.Batch)
		rec.Results = append(rec.Results,
			one("loadgen/restart/cold_to_predict", "mean_ms", r.ColdMs),
			one("loadgen/restart/warm_to_predict", "mean_ms", r.WarmMs),
			one("loadgen/restart/warm_load", "mean_ms", r.WarmLoadMs),
		)
	}
	return rec
}

// sortedStatusKeys orders an ErrorsByStatus breakdown for stable perf
// series emission ("network" sorts after numeric codes naturally).
func sortedStatusKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// exportTraces writes every pass's retained traces to one JSONL file, each
// stamped with a "pass" attr on its root span so mlaas-trace can split them.
func exportTraces(path string, passes []PassReport, regs []*telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, reg := range regs {
		name := "saturation"
		if i < len(passes) {
			name = passes[i].Name
		}
		traces := reg.Traces().Snapshot()
		for j := range traces {
			if traces[j].Root.Attrs == nil {
				traces[j].Root.Attrs = map[string]string{}
			}
			traces[j].Root.Attrs["pass"] = name
		}
		if err := telemetry.WriteTraceJSONL(f, traces); err != nil {
			_ = f.Close()
			return err
		}
	}
	return f.Close()
}

// runPass uploads + trains once, then runs closed-loop predict clients
// against the model until the deadline. Every client records into reg, the
// same registry the pass's in-process server uses.
func runPass(name, url, platform string, cfg pipeline.Config, sp dataset.Split, seed uint64, clients, batch int, d time.Duration, codec client.Codec, reg *telemetry.Registry) (PassReport, error) {
	ctx := context.Background()
	c := client.New(url).WithCodec(codec)
	c.Telemetry = reg
	dsID, err := c.Upload(ctx, platform, sp.Train)
	if err != nil {
		return PassReport{}, fmt.Errorf("upload: %w", err)
	}
	modelID, err := c.Train(ctx, platform, dsID, cfg, seed)
	if err != nil {
		return PassReport{}, fmt.Errorf("train: %w", err)
	}
	// Kernel timings land in this pass's registry for the duration of the
	// pass: the in-process server shares the process, so its GEMM/distance
	// kernels are observable per pass without touching the Default registry.
	// Passes run sequentially, so the process-wide hook swap is safe.
	linalg.SetKernelHook(func(kernel string, seconds float64) {
		reg.Histogram(telemetry.KernelHistogram, "kernel", kernel).Observe(seconds)
	})
	defer linalg.SetKernelHook(nil)
	// One warm-up predict per pass keeps connection setup and (for the
	// forward arm) the initial fit out of the measured window.
	instances := tileInstances(sp.Test.X, batch)
	if _, err := c.Predict(ctx, platform, modelID, instances); err != nil {
		return PassReport{}, fmt.Errorf("warm-up predict: %w", err)
	}

	var (
		mu        sync.Mutex
		latencies []float64 // ms
		errs      int
	)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(url).WithCodec(codec)
			cl.Telemetry = reg
			var local []float64
			localErrs := 0
			for time.Now().Before(deadline) {
				t0 := time.Now()
				_, err := cl.Predict(ctx, platform, modelID, instances)
				if err != nil {
					localErrs++
					continue
				}
				local = append(local, float64(time.Since(t0).Microseconds())/1000)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			errs += localErrs
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	n := len(latencies)
	if n == 0 {
		return PassReport{}, fmt.Errorf("no successful requests in %s (errors: %d)", d, errs)
	}
	sort.Float64s(latencies)
	var sum float64
	for _, v := range latencies {
		sum += v
	}
	rows := float64(len(instances))
	return PassReport{
		Name:        name,
		Requests:    n,
		Errors:      errs,
		DurationSec: elapsed,
		ReqPerSec:   float64(n) / elapsed,
		InstPerSec:  float64(n*len(instances)) / elapsed,
		MeanMs:      sum / float64(n),
		P50Ms:       quantile(latencies, 0.50),
		P95Ms:       quantile(latencies, 0.95),
		P99Ms:       quantile(latencies, 0.99),
		RowMeanMs:   sum / float64(n) / rows,
		RowP95Ms:    quantile(latencies, 0.95) / rows,
	}, nil
}

// tileInstances returns exactly batch query rows, repeating the test rows
// cyclically when the requested batch outgrows the test set — so -batch
// always means what it says and large batches genuinely exercise the
// sharded forward path.
func tileInstances(rows [][]float64, batch int) [][]float64 {
	if batch < 1 {
		batch = 1
	}
	if batch <= len(rows) {
		return rows[:batch]
	}
	out := make([][]float64, batch)
	for i := range out {
		out[i] = rows[i%len(rows)]
	}
	return out
}

// quantile reads the q-th quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// parseFeat turns "kind" or "kind:name" into a pipeline.Feat.
func parseFeat(s string) pipeline.Feat {
	if s == "" || s == "none" {
		return pipeline.Feat{Kind: "none"}
	}
	kind, name, _ := strings.Cut(s, ":")
	return pipeline.Feat{Kind: kind, Name: name}
}

func printSummary(rep Report) {
	fmt.Printf("workload: %s %s on %dx%d points, %d clients, batch %d, codec %s\n",
		rep.Platform, rep.Config, rep.DatasetN, rep.DatasetD, rep.Clients, rep.Batch, rep.Codec)
	for _, p := range rep.Passes {
		fmt.Printf("  %-8s %6d reqs (%d errs) in %5.2fs  %8.1f req/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  row mean %.4fms  row p95 %.4fms\n",
			p.Name, p.Requests, p.Errors, p.DurationSec, p.ReqPerSec, p.P50Ms, p.P95Ms, p.P99Ms, p.RowMeanMs, p.RowP95Ms)
	}
	if rep.SpeedupRPS > 0 {
		fmt.Printf("  forward vs refit speedup: %.1fx req/s\n", rep.SpeedupRPS)
	}
	if r := rep.Restart; r != nil {
		fmt.Printf("  restart-to-first-predict over %d trials (median):\n", r.Trials)
		fmt.Printf("    cold %8.2fms  (%d fits)\n", r.ColdMs, r.ColdFits)
		fmt.Printf("    warm %8.2fms  (%d fits, %d models warmed in %.2fms)\n",
			r.WarmMs, r.WarmFits, r.WarmedModels, r.WarmLoadMs)
		fmt.Printf("    warm restart speedup: %.1fx\n", r.SpeedupX)
	}
	if cl := rep.Cluster; cl != nil {
		fmt.Printf("  cluster scaling (%d models, %d clients, %.0f req/s per replica):\n",
			cl.Models, cl.Clients, cl.ReplicaBudgetRPS)
		for _, pt := range cl.Points {
			fmt.Printf("    %d replica(s): %6d reqs (%d errs) in %5.2fs  goodput %8.1f req/s  p95 %6.2fms  scale %.2fx\n",
				pt.Replicas, pt.Requests, pt.Errors, pt.DurationSec, pt.GoodputRPS, pt.P95Ms, pt.ScaleX)
		}
	}
	if s := rep.Saturation; s != nil {
		if s.CapacityRPS > 0 {
			fmt.Printf("  closed-loop capacity: %.1f req/s\n", s.CapacityRPS)
		}
		for _, pt := range s.Points {
			breakdown := ""
			if len(pt.ErrorsByStatus) > 0 {
				parts := make([]string, 0, len(pt.ErrorsByStatus))
				for _, k := range sortedStatusKeys(pt.ErrorsByStatus) {
					parts = append(parts, fmt.Sprintf("%s:%d", k, pt.ErrorsByStatus[k]))
				}
				breakdown = "  [" + strings.Join(parts, " ") + "]"
			}
			fmt.Printf("  offered %8.1f req/s  goodput %8.1f req/s  shed %8.1f req/s (%d)  dropped %d  errs %d  p95 %.2fms%s\n",
				pt.OfferedRPS, pt.GoodputRPS, pt.ShedRPS, pt.Shed, pt.Dropped, pt.Errors, pt.P95Ms, breakdown)
		}
		fmt.Printf("  knee %.1f req/s, peak goodput %.1f req/s, goodput at 2x knee %.1f req/s (%.0f%% of peak)\n",
			s.KneeRPS, s.PeakGoodputRPS, s.GoodputAt2xKneeRPS, 100*safeRatio(s.GoodputAt2xKneeRPS, s.PeakGoodputRPS))
	}
}

// safeRatio is a/b guarding the b==0 edge.
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
