package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/cluster"
	"mlaasbench/internal/dataset"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/service"
	"mlaasbench/internal/telemetry"
)

// ClusterPoint is one fleet size's measured goodput.
type ClusterPoint struct {
	Replicas    int     `json:"replicas"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"duration_sec"`
	GoodputRPS  float64 `json:"goodput_rps"`
	P95Ms       float64 `json:"p95_ms"`
	// ScaleX is this point's goodput over the 1-replica point's (1.0 for
	// the first point).
	ScaleX float64 `json:"scale_x"`
}

// ClusterReport is the -cluster scaling sweep: the same closed-loop
// workload run through a router over growing fleets of budget-capped
// replicas.
type ClusterReport struct {
	// ReplicaBudgetRPS is each replica's -serve-budget: the fixed-node
	// capacity model that makes scaling measurable on one machine.
	ReplicaBudgetRPS float64        `json:"replica_budget_rps"`
	Models           int            `json:"models"`
	Clients          int            `json:"clients"`
	Replication      int            `json:"replication"`
	Points           []ClusterPoint `json:"points"`
}

// runCluster measures router goodput at each fleet size in counts. Every
// replica is an in-process server paced to budget req/s — the capacity of
// one fixed-size node — so on a single machine the curve isolates what
// the cluster layer adds: with near-linear scaling, goodput at N replicas
// approaches N x budget.
//
// The workload trains `models` models under distinct seeds; distinct
// seeds give distinct ring keys, so the models' primary owners spread
// over the fleet and closed-loop clients cycling the model list keep
// every replica's pacer saturated. A single-model workload would pin to
// one primary and could never scale — models, not requests, are the
// cluster's unit of placement.
func runCluster(counts []int, budget float64, platform string, cfg pipeline.Config, sp dataset.Split, seed uint64, clients, batch, models int, d time.Duration, codec client.Codec) (*ClusterReport, error) {
	rep := &ClusterReport{
		ReplicaBudgetRPS: budget,
		Models:           models,
		Clients:          clients,
		Replication:      cluster.DefaultReplication,
	}
	instances := tileInstances(sp.Test.X, batch)
	for _, n := range counts {
		pt, err := runClusterPoint(n, budget, platform, cfg, sp, instances, seed, clients, models, d, codec)
		if err != nil {
			return nil, fmt.Errorf("%d replicas: %w", n, err)
		}
		if len(rep.Points) == 0 {
			pt.ScaleX = 1
		} else if base := rep.Points[0].GoodputRPS; base > 0 {
			pt.ScaleX = pt.GoodputRPS / base
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

func runClusterPoint(n int, budget float64, platform string, cfg pipeline.Config, sp dataset.Split, instances [][]float64, seed uint64, clients, models int, d time.Duration, codec client.Codec) (ClusterPoint, error) {
	quiet := func(string, ...any) {}
	urls := make([]string, n)
	var backends []*httptest.Server
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	for i := 0; i < n; i++ {
		api := service.NewServer(quiet).
			WithRegistry(telemetry.NewRegistry()).
			WithServeBudget(budget)
		srv := httptest.NewServer(api.Handler())
		backends = append(backends, srv)
		urls[i] = srv.URL
	}
	rt, err := cluster.NewRouter(urls, cluster.WithRegistry(telemetry.NewRegistry()), cluster.WithLogger(quiet))
	if err != nil {
		return ClusterPoint{}, err
	}
	stopProber := rt.StartProber(100 * time.Millisecond)
	defer stopProber()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// One isolated registry per point: cluster clients must not leak into
	// the process-wide default registry (the other passes' isolation
	// contract), and per-point numbers stay attributable.
	reg := telemetry.NewRegistry()
	ctx := context.Background()
	c := client.New(front.URL).WithCodec(codec)
	c.Telemetry = reg
	dsID, err := c.Upload(ctx, platform, sp.Train)
	if err != nil {
		return ClusterPoint{}, fmt.Errorf("upload: %w", err)
	}
	// Distinct seeds -> distinct model ring keys -> primaries spread over
	// the fleet. One warm-up predict per model keeps first-hit costs out
	// of the measured window.
	modelIDs := make([]string, models)
	for i := range modelIDs {
		id, err := c.Train(ctx, platform, dsID, cfg, seed+uint64(i))
		if err != nil {
			return ClusterPoint{}, fmt.Errorf("train model %d: %w", i, err)
		}
		if _, err := c.Predict(ctx, platform, id, instances[:1]); err != nil {
			return ClusterPoint{}, fmt.Errorf("warm-up predict model %d: %w", i, err)
		}
		modelIDs[i] = id
	}

	var (
		mu        sync.Mutex
		latencies []float64
		errs      int
	)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(front.URL).WithCodec(codec)
			cl.Telemetry = reg
			var local []float64
			localErrs := 0
			// Each client walks the model list from its own offset with a
			// stride coprime to the list length, so clients spread over the
			// replicas instead of convoying on one pacer.
			stride := 1
			if len(modelIDs) > 1 {
				stride = 1 + w%(len(modelIDs)-1)
				for gcd(stride, len(modelIDs)) != 1 {
					stride++
				}
			}
			for i := w; time.Now().Before(deadline); i += stride {
				t0 := time.Now()
				_, err := cl.Predict(ctx, platform, modelIDs[i%len(modelIDs)], instances)
				if err != nil {
					localErrs++
					continue
				}
				local = append(local, float64(time.Since(t0).Microseconds())/1000)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			errs += localErrs
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if len(latencies) == 0 {
		return ClusterPoint{}, fmt.Errorf("no successful requests in %s (errors: %d)", d, errs)
	}
	sort.Float64s(latencies)
	return ClusterPoint{
		Replicas:    n,
		Requests:    len(latencies),
		Errors:      errs,
		DurationSec: elapsed,
		GoodputRPS:  float64(len(latencies)) / elapsed,
		P95Ms:       quantile(latencies, 0.95),
	}, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// parseClusterCounts parses "-cluster 1,2,4" into replica counts.
func parseClusterCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad replica count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replica counts in %q", s)
	}
	return out, nil
}
