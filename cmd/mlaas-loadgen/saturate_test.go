package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mlaasbench/internal/client"
	"mlaasbench/internal/pipeline"
	"mlaasbench/internal/rng"
	"mlaasbench/internal/service"
	"mlaasbench/internal/synth"
	"mlaasbench/internal/telemetry"
)

// TestAnalyzeSaturation pins the knee detector on hand-built curves.
func TestAnalyzeSaturation(t *testing.T) {
	pt := func(offered, goodput float64) SaturationPoint {
		return SaturationPoint{OfferedRPS: offered, GoodputRPS: goodput}
	}
	t.Run("flat past knee", func(t *testing.T) {
		// Climbs to ~100, admission keeps it flat: knee at the first point
		// within 95% of peak, and goodput at 2x knee equals the plateau.
		points := []SaturationPoint{
			pt(50, 50), pt(75, 75), pt(100, 98), pt(150, 100), pt(200, 99), pt(300, 97),
		}
		knee, peak, at2x := analyzeSaturation(points)
		if knee != 100 {
			t.Errorf("knee=%v, want 100", knee)
		}
		if peak != 100 {
			t.Errorf("peak=%v, want 100", peak)
		}
		if at2x != 99 {
			t.Errorf("goodput at 2x knee=%v, want 99 (the offered=200 point)", at2x)
		}
	})
	t.Run("collapse past knee", func(t *testing.T) {
		// No admission control: goodput collapses, and the 2x-knee reading
		// exposes it (40 against a peak of 100).
		points := []SaturationPoint{pt(50, 50), pt(100, 100), pt(200, 40), pt(300, 10)}
		knee, peak, at2x := analyzeSaturation(points)
		if knee != 100 || peak != 100 {
			t.Errorf("knee=%v peak=%v, want 100/100", knee, peak)
		}
		if at2x != 40 {
			t.Errorf("goodput at 2x knee=%v, want 40", at2x)
		}
	})
	t.Run("sweep never reaches 2x knee", func(t *testing.T) {
		points := []SaturationPoint{pt(80, 80), pt(100, 100)}
		if _, _, at2x := analyzeSaturation(points); at2x != 0 {
			t.Errorf("goodput at 2x knee=%v, want 0 when unreached", at2x)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if knee, peak, at2x := analyzeSaturation(nil); knee != 0 || peak != 0 || at2x != 0 {
			t.Errorf("empty sweep = %v/%v/%v, want zeros", knee, peak, at2x)
		}
	})
}

// TestOpenLoopAccounting drives the open-loop pass against stub servers so
// the three outcome classes are deterministic: a 503 + Retry-After stub is
// all sheds, an OK stub is all goodput, a 500 stub is all errors — and the
// shed path must not trigger client retries (open loop, MaxRetries < 0).
func TestOpenLoopAccounting(t *testing.T) {
	ctx := context.Background()
	instances := [][]float64{{1, 2, 3}}
	cases := []struct {
		name    string
		handler http.HandlerFunc
		check   func(t *testing.T, p SaturationPoint, served int)
	}{
		{"all shed", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"admission queue full","code":"overloaded"}`))
		}, func(t *testing.T, p SaturationPoint, served int) {
			if p.Good != 0 || p.Errors != 0 || p.Shed == 0 {
				t.Errorf("shed stub: good=%d shed=%d errs=%d, want all shed", p.Good, p.Shed, p.Errors)
			}
			// The warm-up predicts hit the stub too; beyond them, one HTTP
			// request per shed — sheds must not be retried.
			if served != p.Shed+openLoopWarmup {
				t.Errorf("server saw %d requests for %d sheds (+%d warm-ups); sheds must not be retried",
					served, p.Shed, openLoopWarmup)
			}
			if p.ErrorsByStatus["503"] != p.Shed {
				t.Errorf("errors_by_status[503]=%d, want the shed count %d", p.ErrorsByStatus["503"], p.Shed)
			}
		}},
		{"all good", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"labels":[0]}`))
		}, func(t *testing.T, p SaturationPoint, served int) {
			if p.Shed != 0 || p.Errors != 0 || p.Good == 0 {
				t.Errorf("ok stub: good=%d shed=%d errs=%d, want all good", p.Good, p.Shed, p.Errors)
			}
			if p.GoodputRPS <= 0 {
				t.Errorf("goodput=%v, want > 0", p.GoodputRPS)
			}
			if p.ErrorsByStatus != nil {
				t.Errorf("errors_by_status=%v on an all-good point, want nil (omitted from JSON)", p.ErrorsByStatus)
			}
		}},
		{"all errors", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"boom"}`))
		}, func(t *testing.T, p SaturationPoint, served int) {
			if p.Good != 0 || p.Shed != 0 || p.Errors == 0 {
				t.Errorf("error stub: good=%d shed=%d errs=%d, want all errors", p.Good, p.Shed, p.Errors)
			}
			if served != p.Errors+openLoopWarmup {
				t.Errorf("server saw %d requests for %d errors (+%d warm-ups); open loop must not retry",
					served, p.Errors, openLoopWarmup)
			}
			if p.ErrorsByStatus["500"] != p.Errors {
				t.Errorf("errors_by_status[500]=%d, want the error count %d", p.ErrorsByStatus["500"], p.Errors)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var served atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				served.Add(1)
				tc.handler(w, r)
			}))
			defer srv.Close()
			reg := telemetry.NewRegistry()
			p := runOpenLoop(ctx, srv.URL, "local", "m1", instances, 200, client.CodecJSON, 200*time.Millisecond, reg)
			if p.Requests == 0 {
				t.Fatal("open loop completed no arrivals")
			}
			tc.check(t, p, int(served.Load()))
		})
	}
}

// TestSaturationSweepEndToEnd runs a tiny explicit-rate sweep against an
// in-process admission-controlled server — the -saturate path minus the CLI
// — and checks the artifact shape plus Default-registry isolation for the
// new codec/admission metric families.
func TestSaturationSweepEndToEnd(t *testing.T) {
	cfg := pipeline.Config{Feat: parseFeat(""), Classifier: "logreg", Params: map[string]any{}}
	ds := synth.GenerateClean(synth.Spec{
		Name: "sat", Gen: synth.GenLinear, N: 120, D: 4, Noise: 0.2,
	}, synth.Quick, 1)
	sp := ds.StratifiedSplit(0.7, rng.New(7))

	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(service.NewServer(func(string, ...any) {}).
		WithRegistry(reg).
		WithAdmission(2, 8).
		Handler())
	defer srv.Close()

	rep, err := runSaturation(srv.URL, "local", cfg, sp, 1, 2, 16, client.CodecBinary, "50,100", 250*time.Millisecond, reg)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("%d points for 2 rates", len(rep.Points))
	}
	if rep.Points[0].OfferedRPS != 50 || rep.Points[1].OfferedRPS != 100 {
		t.Errorf("rates not ascending: %v, %v", rep.Points[0].OfferedRPS, rep.Points[1].OfferedRPS)
	}
	total := 0
	for _, p := range rep.Points {
		total += p.Good
	}
	if total == 0 {
		t.Fatal("sweep produced no successful predicts")
	}
	if rep.KneeRPS <= 0 || rep.PeakGoodputRPS <= 0 {
		t.Errorf("knee=%v peak=%v, want > 0", rep.KneeRPS, rep.PeakGoodputRPS)
	}
	// Binary-codec traffic landed in the pass registry, not the default one.
	if n := reg.Counter(telemetry.CodecRequestsTotal, "codec", "binary").Value(); n == 0 {
		t.Error("pass registry saw no binary-codec predicts")
	}
	if n := reg.Counter(telemetry.AdmissionAdmittedTotal, "route", "predict").Value(); n == 0 {
		t.Error("pass registry saw no admitted requests")
	}
	for _, name := range []string{telemetry.CodecRequestsTotal, telemetry.AdmissionAdmittedTotal, telemetry.AdmissionShedTotal} {
		if v := sumCounters(telemetry.Default(), name); v != 0 {
			t.Errorf("default registry %s=%d; sweep must stay in its own registry", name, v)
		}
	}
	if n := telemetry.Default().Histogram(telemetry.WireFrameBytesHistogram, "dir", "rx").Count(); n != 0 {
		t.Errorf("default registry saw %d rx frames; sweep must stay in its own registry", n)
	}
}

// sumCounters totals one family's counters across label values on reg.
func sumCounters(reg *telemetry.Registry, name string) int64 {
	var total int64
	for _, route := range []string{"predict"} {
		total += reg.Counter(name, "route", route).Value()
	}
	for _, codec := range []string{"json", "binary"} {
		total += reg.Counter(name, "codec", codec).Value()
	}
	return total
}
