// Command mlaas-router is the cluster front end: it consistent-hashes
// model keys over a fleet of mlaas-server replicas and proxies the
// public MLaaS API onto them with health-aware failover.
//
// Usage:
//
//	mlaas-router -replicas http://h1:8080,http://h2:8080[,...]
//	             [-addr :8070] [-replication 2] [-vnodes 128]
//	             [-probe-interval 1s] [-probe-timeout 500ms]
//	             [-breaker-failures 3] [-breaker-cooldown 2s] [-quiet]
//
// Every model trains on its R ring owners and stays cache-resident
// exactly there; predicts route to the primary owner and fail over down
// the owner list on any replica failure, including death mid-response.
// Bodies cross the router verbatim, so binary-frame predicts stay binary
// hop-to-hop. Replicas that probe down, report ready:false (boot warm
// scan still running), or trip the per-replica circuit breaker leave
// rotation until they recover; artifacts they missed are replayed onto
// them lazily on first need.
//
// The router's own /metrics exposes mlaas_router_requests_total
// {replica,outcome}, per-replica in-flight gauges, replica state-change
// (ring rebalance) counters, failover and repair counters. /healthz
// reports fleet state: one entry per replica with up/ready/breaker
// status, plus the available-replica count.
//
// Replicas of one cluster should share a -store-dir so a joining replica
// warms from the fleet's artifact directory instead of refitting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"mlaasbench/internal/cluster"
	"mlaasbench/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	replication := flag.Int("replication", cluster.DefaultReplication,
		"ring owners per model key (R); each model is cache-resident on exactly R replicas")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
	probeInterval := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health probe period per replica")
	probeTimeout := flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "timeout for one health probe")
	breakerFailures := flag.Int("breaker-failures", cluster.DefaultBreakerFailures,
		"consecutive proxy failures that open a replica's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", cluster.DefaultBreakerCooldown,
		"how long an open breaker keeps a replica out of rotation before a trial request")
	quiet := flag.Bool("quiet", false, "suppress router logging")
	flag.Parse()

	urls := strings.Split(*replicas, ",")
	var clean []string
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			clean = append(clean, u)
		}
	}
	if len(clean) == 0 {
		log.Fatal("mlaas-router: -replicas is required (comma-separated base URLs)")
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	reg := telemetry.NewRegistry()
	telemetry.SetBuildInfo(reg)
	rt, err := cluster.NewRouter(clean,
		cluster.WithRegistry(reg),
		cluster.WithLogger(logf),
		cluster.WithReplication(*replication),
		cluster.WithVirtualNodes(*vnodes),
		cluster.WithBreaker(*breakerFailures, *breakerCooldown),
		cluster.WithProbeTimeout(*probeTimeout),
	)
	if err != nil {
		log.Fatalf("mlaas-router: %v", err)
	}
	stopProber := rt.StartProber(*probeInterval)
	defer stopProber()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("mlaas-router listening on %s over %d replicas (R=%d, %d vnodes; fleet health at /healthz)",
		*addr, len(clean), *replication, *vnodes)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}
